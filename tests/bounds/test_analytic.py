"""The pure analytic bounds: formulas, floors, dispatch, monotonicity."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds import BOUND_CELLS, cell_bound, counting_bound, \
    matmul_family_bound
from repro.core.errors import BoundsError

pytestmark = pytest.mark.fast


class TestMatmulFamilyBound:
    def test_loomis_whitney_formula(self):
        # n=64, P=64: 3*(64^3/64)^(2/3) - 3*64^2/64 = 768 - 192 = 576
        got = matmul_family_bound(flops=64 ** 3,
                                  resident_words=3 * 64 ** 2 / 64, P=64)
        assert got["family"] == "matmul-family"
        assert got["bound_words"] == pytest.approx(576.0)
        assert got["detail"]["accessed_words"] == pytest.approx(768.0)

    def test_floored_at_one_word_when_residency_dominates(self):
        got = matmul_family_bound(flops=8, resident_words=1e6, P=2)
        assert got["bound_words"] == 1.0
        assert got["detail"]["raw_bound_words"] < 0

    def test_rejects_bad_P(self):
        with pytest.raises(BoundsError, match="P must be"):
            matmul_family_bound(flops=1, resident_words=0, P=0)


class TestCountingBound:
    def test_keys_minus_expected_local(self):
        got = counting_bound(keys_per_proc=256, P=64)
        assert got["family"] == "counting"
        # ceil(256/64) = 4 keys expected to stay local
        assert got["bound_words"] == 252.0
        assert got["detail"]["expected_local_keys"] == 4

    def test_floored_at_one_word(self):
        assert counting_bound(keys_per_proc=1, P=2)["bound_words"] == 1.0

    def test_rejects_bad_P(self):
        with pytest.raises(BoundsError, match="P must be"):
            counting_bound(keys_per_proc=8, P=-1)


class TestCellDispatch:
    @pytest.mark.parametrize("name,family", [
        ("matmul/cm5", "matmul-family"),
        ("lu/gcel", "matmul-family"),
        ("apsp/gcel", "matmul-family"),
        ("bitonic/maspar", "counting"),
        ("samplesort/gcel", "counting"),
    ])
    def test_family_per_algorithm(self, name, family):
        cell = BOUND_CELLS[name]
        assert cell_bound(cell, 64, 64)["family"] == family == cell.family

    def test_lu_cube_is_a_third_of_matmul(self):
        lu = cell_bound(BOUND_CELLS["lu/gcel"], 96, 64)
        mm = cell_bound(BOUND_CELLS["matmul/cm5"], 96, 64)
        assert lu["detail"]["flops"] == pytest.approx(
            mm["detail"]["flops"] / 3)

    def test_unknown_algorithm_raises(self):
        from repro.bounds import BoundCell
        bogus = BoundCell("x/y", "stencil", None, "gcel", "counting",
                          base=8, multiple=1, minimum=1)
        with pytest.raises(BoundsError, match="no lower bound"):
            cell_bound(bogus, 8, 4)


class TestMonotonicity:
    """The analytic halves of the ISSUE's property battery: at fixed P
    the bound grows monotonically in n (pure math, so exhaustive-ish
    hypothesis sweeps are cheap)."""

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=8, max_value=2048),
           step=st.integers(min_value=1, max_value=512),
           P=st.sampled_from([16, 64, 256, 1024]))
    def test_matmul_family_bound_monotone_in_n(self, n, step, P):
        for cell in (BOUND_CELLS["matmul/cm5"], BOUND_CELLS["lu/gcel"],
                     BOUND_CELLS["apsp/gcel"]):
            lo = cell_bound(cell, n, P)["bound_words"]
            hi = cell_bound(cell, n + step, P)["bound_words"]
            assert hi >= lo

    @settings(max_examples=50, deadline=None)
    @given(m=st.integers(min_value=2, max_value=1 << 20),
           step=st.integers(min_value=1, max_value=1 << 16),
           P=st.sampled_from([16, 64, 1024]))
    def test_counting_bound_monotone_in_m(self, m, step, P):
        lo = counting_bound(keys_per_proc=m, P=P)["bound_words"]
        hi = counting_bound(keys_per_proc=m + step, P=P)["bound_words"]
        assert hi >= lo

    @settings(max_examples=50, deadline=None)
    @given(scale=st.floats(min_value=0.01, max_value=1.0,
                           allow_nan=False))
    def test_cell_sizes_respect_floor_and_multiple(self, scale):
        for cell in BOUND_CELLS.values():
            n = cell.size(scale)
            assert n >= cell.minimum
            assert n % math.gcd(cell.multiple, n) == 0
            assert n == cell.minimum or n % cell.multiple == 0
