"""Edge-case tests for :func:`repro.simulator.engine.run_spmd`:
degenerate machine sizes, runaway programs and blocked receives."""

import pytest

from repro.core.errors import DeadlockError, MailboxError, SimulationError
from repro.machines import CM5, GCel
from repro.simulator.engine import run_spmd


class TestSingleProcessor:
    def test_p1_program_runs_to_completion(self):
        def prog(ctx):
            ctx.charge_flops(10)
            ctx.put(0, 42, nbytes=4)  # self-message: still legal
            yield ctx.sync()
            return ctx.get()

        res = run_spmd(CM5(seed=0), prog, P=1)
        assert res.returns == [42]
        assert res.clocks.shape == (1,)
        assert res.time_us > 0

    def test_p1_machine(self):
        def prog(ctx):
            assert ctx.P == 1 and ctx.rank == 0
            yield ctx.sync()

        res = run_spmd(GCel(P=1, seed=0), prog)
        assert len(res.trace) >= 0  # ran without error


class TestRunawayPrograms:
    def test_never_terminating_program_hits_max_supersteps(self):
        def prog(ctx):
            while True:  # syncs forever, never returns
                yield ctx.sync()

        with pytest.raises(DeadlockError, match="supersteps"):
            run_spmd(CM5(seed=0), prog, P=2, max_supersteps=7)

    def test_terminating_program_within_bound(self):
        def prog(ctx):
            for _ in range(5):
                ctx.charge_flops(1)
                yield ctx.sync()

        # the engine needs two iterations past the last sync (observe the
        # returns, then notice nobody is alive)
        res = run_spmd(CM5(seed=0), prog, P=2, max_supersteps=7)
        assert len(res.trace) == 5
        with pytest.raises(DeadlockError):
            run_spmd(CM5(seed=0), prog, P=2, max_supersteps=4)


class TestDeadlockedReceive:
    def test_receive_without_sender_is_a_deadlock(self):
        def prog(ctx):
            yield ctx.sync()
            if ctx.rank == 0:
                ctx.get(src=1, tag="data")  # proc 1 never sends
            yield ctx.sync()

        with pytest.raises(DeadlockError):
            run_spmd(CM5(seed=0), prog, P=2)

    def test_mailbox_error_is_a_deadlock_error(self):
        # a blocked receive means this processor would wait forever
        assert issubclass(MailboxError, DeadlockError)
        assert issubclass(DeadlockError, SimulationError)

    def test_receive_of_later_superstep_message_deadlocks(self):
        def prog(ctx):
            # the payload is only delivered at the *next* sync, so an
            # immediate get deadlocks
            ctx.put((ctx.rank + 1) % ctx.P, ctx.rank, nbytes=4)
            ctx.get()
            yield ctx.sync()

        with pytest.raises(DeadlockError):
            run_spmd(CM5(seed=0), prog, P=4)


class TestPartitionSizes:
    def test_p_not_dividing_machine_size(self):
        """P = 48 virtual procs on a 64-node machine: legal subset."""
        def prog(ctx):
            ctx.put((ctx.rank + 1) % ctx.P, ctx.rank, nbytes=4)
            yield ctx.sync()
            return ctx.get()

        res = run_spmd(CM5(seed=0), prog, P=48)
        assert res.returns == [(r - 1) % 48 for r in range(48)]

    def test_prime_partition(self):
        def prog(ctx):
            ctx.charge_flops(ctx.rank)
            yield ctx.sync()

        res = run_spmd(GCel(seed=0), prog, P=7)
        assert res.clocks.shape == (7,)

    def test_oversized_partition_rejected(self):
        def prog(ctx):
            yield ctx.sync()

        with pytest.raises(SimulationError, match="P=100"):
            run_spmd(CM5(seed=0), prog, P=100)

    def test_zero_and_negative_p_rejected(self):
        def prog(ctx):
            yield ctx.sync()

        for bad in (0, -4):
            with pytest.raises(SimulationError):
                run_spmd(CM5(seed=0), prog, P=bad)
