"""Deeper SPMD engine semantics: delivery, clocks, flags, barriers."""

import numpy as np
import pytest

from repro.core.work import Flops
from repro.machines import CM5, GCel, MasParMP1
from repro.simulator import run_spmd


class TestDelivery:
    def test_exactly_once(self, cm5):
        """Each message is delivered to exactly one mailbox, once."""

        def prog(ctx):
            for j in range(3):
                ctx.put((ctx.rank + 1 + j) % ctx.P, (ctx.rank, j),
                        nbytes=8, tag="m")
            yield ctx.sync()
            got = ctx.collect_list("m")
            return sorted(got)

        res = run_spmd(cm5, prog, P=8)
        all_received = [msg for r in res.returns for _, msg in r]
        assert len(all_received) == 24
        assert len(set(all_received)) == 24

    def test_multiple_messages_same_pair_ordered(self, cm5):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    ctx.put(1, i, nbytes=8, tag="seq")
            yield ctx.sync()
            if ctx.rank == 1:
                return [ctx.get(0, "seq") for _ in range(5)]

        res = run_spmd(cm5, prog, P=2)
        assert res.returns[1] == [0, 1, 2, 3, 4]

    def test_tags_isolate_streams(self, cm5):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.put(1, "a", nbytes=1, tag="t1")
                ctx.put(1, "b", nbytes=1, tag="t2")
            yield ctx.sync()
            if ctx.rank == 1:
                return (ctx.get(0, "t2"), ctx.get(0, "t1"))

        res = run_spmd(cm5, prog, P=2)
        assert res.returns[1] == ("b", "a")


class TestClocks:
    def test_superstep_durations_nonnegative(self, gcel):
        def prog(ctx):
            for i in range(6):
                ctx.charge(Flops(100 * (ctx.rank + 1)))
                ctx.put((ctx.rank + 1) % ctx.P, i, nbytes=4, tag=i)
                yield ctx.sync()
                ctx.get(tag=i)

        res = run_spmd(gcel, prog)
        assert all(s.measured_us >= 0 for s in res.trace)
        assert res.time_us == pytest.approx(
            sum(s.measured_us for s in res.trace))

    def test_barrier_false_lets_clocks_spread(self):
        machine = GCel(seed=9)

        def prog(ctx):
            partner = ctx.rank ^ 1
            for i in range(4):
                ctx.put(partner, i, nbytes=4, tag=i)
                yield ctx.sync(barrier=False)
                ctx.get(partner, tag=i)

        res = run_spmd(machine, prog)
        assert res.clocks.std() > 0

    def test_barrier_true_equalises(self):
        machine = GCel(seed=9)

        def prog(ctx):
            ctx.put((ctx.rank + 1) % ctx.P, 0, nbytes=4, tag="x")
            yield ctx.sync(barrier=True)
            ctx.get(tag="x")

        res = run_spmd(machine, prog)
        assert np.allclose(res.clocks, res.clocks[0])

    def test_simd_ignores_barrier_flag(self):
        machine = MasParMP1(P=64, seed=9)

        def prog(ctx):
            ctx.put((ctx.rank + 1) % ctx.P, 0, nbytes=4, tag="x")
            yield ctx.sync(barrier=False)
            ctx.get(tag="x")

        res = run_spmd(machine, prog)
        assert np.allclose(res.clocks, res.clocks[0])


class TestFlags:
    def test_any_unstaggered_token_marks_phase(self, cm5):
        def prog(ctx):
            ctx.put((ctx.rank + 1) % ctx.P, 0, nbytes=8)
            yield ctx.sync(stagger=(False if ctx.rank == 0 else None))

        res = run_spmd(cm5, prog, P=4)
        assert not res.trace[0].phase.stagger

    def test_default_staggered(self, cm5):
        def prog(ctx):
            ctx.put((ctx.rank + 1) % ctx.P, 0, nbytes=8)
            yield ctx.sync()

        res = run_spmd(cm5, prog, P=4)
        assert res.trace[0].phase.stagger

    def test_first_label_wins(self, cm5):
        def prog(ctx):
            yield ctx.sync("alpha" if ctx.rank == 0 else "beta")

        res = run_spmd(cm5, prog, P=4)
        assert res.trace[0].label == "alpha"

    def test_simd_flag_visible_to_programs(self):
        def prog(ctx):
            yield ctx.sync()
            return ctx.simd

        assert all(run_spmd(MasParMP1(P=64, seed=0), prog).returns)
        assert not any(run_spmd(CM5(seed=0), prog).returns)


class TestStepTags:
    def test_step_tags_reach_phase(self, cm5):
        def prog(ctx):
            for s in range(3):
                ctx.put((ctx.rank + 1 + s) % ctx.P, s, nbytes=8, step=s)
            yield ctx.sync()

        res = run_spmd(cm5, prog, P=8)
        assert res.trace[0].phase.n_steps == 3

    def test_untagged_defaults_to_minus_one(self, cm5):
        def prog(ctx):
            ctx.put((ctx.rank + 1) % ctx.P, 0, nbytes=8)
            yield ctx.sync()

        res = run_spmd(cm5, prog, P=4)
        assert res.trace[0].phase.step_ids.tolist() == [-1]
