"""Step-program IR engine: record-once / price-many, bit-identically.

The IR engine's contract extends the vector engine's: for every
algorithm with a vector port, ``engine="ir"`` must produce exactly the
same clocks, trace and per-rank results as the generator engine — on
the recording run, on memory hits, on disk hits (structure-only blobs
whose returns regenerate lazily), and under any ``disable=`` ablation
subset.  These tests enforce the full engine equivalence matrix, the
store's record-once discipline, canonical (byte-identical) blob
round-trips, and the key's staleness rules (schema version + algorithm
source fingerprint).
"""

import importlib.util
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import apsp, bitonic, lu, matmul, radix, samplesort
from repro.machines import CM5, GCel, MasParMP1, ModernCluster, T800Grid
from repro.simulator.ir import (IR_SCHEMA, IRStore, StepProgram, _decode_blob,
                                _encode_blob, build_program, ir_key,
                                ir_store_scope)
from repro.simulator.lower import (algorithm_fingerprint,
                                   clear_algorithm_fingerprints, run_lowered)
from repro.simulator.replay import replay
from repro.simulator.result import RunResult

MACHINES = {
    "maspar": MasParMP1,
    "gcel": GCel,
    "cm5": CM5,
    "t800": T800Grid,
    "modern": ModernCluster,
}

# One representative configuration per algorithm, sized for test speed.
CASES = {
    "matmul": lambda m, e: matmul.run(m, 12, P=8, seed=3, engine=e),
    "bitonic": lambda m, e: bitonic.run(m, 128, P=16, seed=5, engine=e),
    "lu": lambda m, e: lu.run(m, 16, P=16, seed=7, engine=e),
    "apsp": lambda m, e: apsp.run(m, 16, P=16, seed=11, engine=e),
    "samplesort": lambda m, e: samplesort.run(m, 256, P=16, seed=13,
                                              engine=e),
    "radix": lambda m, e: radix.run(m, 256, P=16, seed=17, engine=e),
}


def run_engine(machine_name, algorithm, engine, *, seed=1, disable=()):
    machine = MACHINES[machine_name](seed=seed, disable=disable)
    return CASES[algorithm](machine, engine)


def assert_runs_identical(g, v):
    """Every observable of the two runs must match exactly."""
    assert g.time_us == v.time_us
    assert np.array_equal(g.clocks, v.clocks)
    assert len(g.returns) == len(v.returns)
    for a, b in zip(g.returns, v.returns):
        assert np.array_equal(np.asarray(a), np.asarray(b))
    assert len(g.trace.supersteps) == len(v.trace.supersteps)
    for a, b in zip(g.trace.supersteps, v.trace.supersteps):
        assert a.label == b.label
        assert a.measured_us == b.measured_us
        assert a.work == b.work
        pa, pb = a.phase, b.phase
        assert pa.stagger == pb.stagger
        for field in ("src", "dst", "count", "msg_bytes", "step"):
            assert np.array_equal(getattr(pa, field), getattr(pb, field)), \
                f"phase field {field} differs in superstep {a.label!r}"


class TestEngineEquivalenceMatrix:
    """IR vs vector vs generator across every machine and algorithm."""

    @pytest.mark.parametrize("machine", sorted(MACHINES))
    @pytest.mark.parametrize("algorithm", sorted(CASES))
    def test_three_engines_identical(self, machine, algorithm):
        with ir_store_scope(IRStore()) as store:
            g = run_engine(machine, algorithm, "generator")
            v = run_engine(machine, algorithm, "vector")
            i1 = run_engine(machine, algorithm, "ir")  # records
            i2 = run_engine(machine, algorithm, "ir")  # memory hit
            assert_runs_identical(g, v)
            assert_runs_identical(g, i1)
            assert_runs_identical(g, i2)
            assert store.recorded == 1
            assert store.memory_hits >= 1


class TestRecordOncePriceMany:
    def test_one_recording_serves_seeds_and_ablations(self):
        """The sweep discipline: structure recorded once, priced per
        (seed, disable) — each replay bit-identical to its generator."""
        subsets = [(), ("endpoint-contention",),
                   ("comm-staggering", "cache-effects")]
        with ir_store_scope(IRStore()) as store:
            for seed in (0, 9):
                for disable in subsets:
                    g = run_engine("cm5", "bitonic", "generator",
                                   seed=seed, disable=disable)
                    i = run_engine("cm5", "bitonic", "ir",
                                   seed=seed, disable=disable)
                    assert_runs_identical(g, i)
            assert store.recorded == 1

    def test_disk_hit_replays_identically_with_lazy_returns(self, tmp_path):
        """A fresh process (new store) loads structure from disk; the
        per-rank returns regenerate lazily and still match exactly."""
        g = run_engine("gcel", "lu", "generator")
        with ir_store_scope(IRStore(tmp_path)) as store:
            run_engine("gcel", "lu", "ir")
            assert store.recorded == 1
        with ir_store_scope(IRStore(tmp_path)) as store2:
            i = run_engine("gcel", "lu", "ir")
            assert store2.disk_hits == 1
            assert store2.recorded == 0
            # reading .returns forces the data-only pass
            assert_runs_identical(g, i)

    def test_radix_disk_hit_on_modern(self, tmp_path):
        """The new scenario axes together: a radix recording made on the
        fat-tree profile replays bit-identically from disk."""
        g = run_engine("modern", "radix", "generator")
        with ir_store_scope(IRStore(tmp_path)) as store:
            run_engine("modern", "radix", "ir")
            assert store.recorded == 1
        with ir_store_scope(IRStore(tmp_path)) as store2:
            i = run_engine("modern", "radix", "ir")
            assert store2.disk_hits == 1
            assert store2.recorded == 0
            assert_runs_identical(g, i)

    def test_radix_ablation_subsets_on_modern(self):
        """One radix recording prices every (seed, disable) combination
        of the modern profile's phenomena — each replay bit-identical to
        its generator run (scalar pricing) despite the batched pricer."""
        subsets = [(), ("incast-collapse",), ("adaptive-routing",),
                   ("incast-collapse", "adaptive-routing")]
        with ir_store_scope(IRStore()) as store:
            for seed in (0, 9):
                for disable in subsets:
                    g = run_engine("modern", "radix", "generator",
                                   seed=seed, disable=disable)
                    i = run_engine("modern", "radix", "ir",
                                   seed=seed, disable=disable)
                    assert_runs_identical(g, i)
            assert store.recorded == 1


class TestLazyReturns:
    def test_thunk_materialises_once(self):
        calls = []

        def thunk():
            calls.append(1)
            return [1, 2, 3]

        r = RunResult(time_us=1.0, clocks=np.zeros(3), trace=None,
                      returns=thunk)
        assert r.returns == [1, 2, 3]
        assert r.returns == [1, 2, 3]
        assert len(calls) == 1

    def test_plain_returns_untouched(self):
        r = RunResult(time_us=1.0, clocks=np.zeros(2), trace=None,
                      returns=[4, 5])
        assert r.returns == [4, 5]


class TestBlobRoundTrip:
    def record(self, n, seed):
        from repro.simulator.vector import VectorContext, collect_steps

        machine = CM5(seed=0)
        keys = np.random.default_rng(seed).integers(
            0, 1 << 32, size=(16, n), dtype=np.uint64)
        ctx = VectorContext(16, machine.nominal.w, simd=machine.simd)
        gen = bitonic.bitonic_vector_program(ctx, keys, "bsp")
        steps, returns = collect_steps(ctx, gen, max_supersteps=10_000)
        return build_program(P=16, word_bytes=machine.nominal.w,
                             simd=machine.simd, steps=steps, returns=returns)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n=st.sampled_from([64, 128, 256]),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_serialise_replay_parity(self, n, seed):
        prog = self.record(n, seed)
        blob = _encode_blob(prog.to_doc())
        back = StepProgram.from_doc(_decode_blob(blob))
        a = replay(CM5(seed=42), prog, label="orig")
        b = replay(CM5(seed=42), back, label="orig")
        assert a.time_us == b.time_us
        assert np.array_equal(a.clocks, b.clocks)
        for sa, sb in zip(a.trace.supersteps, b.trace.supersteps):
            assert sa.label == sb.label
            assert sa.measured_us == sb.measured_us
            assert sa.work == sb.work

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_reserialisation_is_byte_identical(self, seed):
        """Canonical encoding: decode → re-encode reproduces the blob
        exactly, so re-records after quarantine are byte-identical."""
        prog = self.record(128, seed)
        blob = _encode_blob(prog.to_doc())
        again = _encode_blob(StepProgram.from_doc(_decode_blob(blob)).to_doc())
        assert blob == again

    def test_integer_dtypes_survive_narrowing(self):
        """_pack's width narrowing must restore the original dtype."""
        prog = self.record(64, 0)
        back = StepProgram.from_doc(_decode_blob(_encode_blob(prog.to_doc())))
        for ph, bh in zip(prog.phases, back.phases):
            for f in ("src", "dst", "count", "msg_bytes", "step"):
                a, b = getattr(ph, f), getattr(bh, f)
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)


class TestKeying:
    COMMON = dict(algorithm="x", fingerprint="f" * 64, P=16,
                  word_bytes=4, simd=False, params={"n": 64, "seed": 0})

    def test_deterministic(self):
        assert ir_key(**self.COMMON) == ir_key(**self.COMMON)

    @pytest.mark.parametrize("change", [
        {"fingerprint": "e" * 64},
        {"P": 32},
        {"word_bytes": 8},
        {"simd": True},
        {"params": {"n": 64, "seed": 1}},
        {"algorithm": "y"},
    ])
    def test_every_component_keys(self, change):
        assert ir_key(**{**self.COMMON, **change}) != ir_key(**self.COMMON)

    def test_schema_version_is_in_key(self, monkeypatch):
        base = ir_key(**self.COMMON)
        monkeypatch.setattr("repro.simulator.ir.IR_SCHEMA", IR_SCHEMA + 1)
        assert ir_key(**self.COMMON) != base


_PROG_TEMPLATE = """\
import numpy as np


def tiny_program(ctx):
    ranks = ctx.ranks()
    ctx.put_group(ranks, (ranks + 1) %% ctx.P, nbytes=ctx.word_bytes)
    ctx.charge_flops(ranks, %d)
    yield ctx.sync("ring")
    return [int(r) for r in range(ctx.P)]
"""


def _load(path, name):
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


class TestFingerprintStaleness:
    def test_editing_algorithm_body_misses_the_cache(self, tmp_path):
        """The regression the fingerprint exists for: change an
        algorithm's source and its recordings must not be reused."""
        path = tmp_path / "tiny_alg.py"
        path.write_text(_PROG_TEMPLATE % 100)
        mod = _load(path, "tiny_alg_fp_test")
        machine = CM5(seed=1)
        kw = dict(algorithm="tiny", key_params={"n": 1}, P=8, label="tiny")
        try:
            with ir_store_scope(IRStore(tmp_path / "ir")) as store:
                r1 = run_lowered(machine, mod.tiny_program, **kw)
                assert store.recorded == 1
                fp1 = algorithm_fingerprint(mod.tiny_program)

                # edit the body: the charge changes, so replays of the
                # old recording would be silently wrong
                path.write_text(_PROG_TEMPLATE % 999)
                clear_algorithm_fingerprints()
                mod = _load(path, "tiny_alg_fp_test")
                fp2 = algorithm_fingerprint(mod.tiny_program)
                assert fp1 != fp2

                r2 = run_lowered(CM5(seed=1), mod.tiny_program, **kw)
                assert store.recorded == 2  # miss → fresh recording
                assert r2.time_us > r1.time_us  # the edit took effect
        finally:
            sys.modules.pop("tiny_alg_fp_test", None)
            clear_algorithm_fingerprints()

    def test_unedited_source_hits(self, tmp_path):
        path = tmp_path / "tiny_alg.py"
        path.write_text(_PROG_TEMPLATE % 100)
        mod = _load(path, "tiny_alg_fp_hit_test")
        kw = dict(algorithm="tiny", key_params={"n": 1}, P=8, label="tiny")
        try:
            with ir_store_scope(IRStore(tmp_path / "ir")) as store:
                run_lowered(CM5(seed=1), mod.tiny_program, **kw)
                run_lowered(CM5(seed=1), mod.tiny_program, **kw)
                assert store.recorded == 1
                assert store.memory_hits == 1
        finally:
            sys.modules.pop("tiny_alg_fp_hit_test", None)
            clear_algorithm_fingerprints()
