"""Tests for the SPMD engine."""

import numpy as np
import pytest

from repro.core.errors import MailboxError, SimulationError
from repro.core.work import Flops
from repro.machines import CM5, MasParMP1
from repro.simulator import run_spmd


def ring_shift(ctx, payload_value):
    """Each proc sends one word to its right neighbour."""
    right = (ctx.rank + 1) % ctx.P
    ctx.put(right, payload_value + ctx.rank, nbytes=ctx.word_bytes, tag="ring")
    yield ctx.sync("shift")
    got = ctx.get(src=(ctx.rank - 1) % ctx.P, tag="ring")
    return got


class TestBasicExecution:
    def test_ring_shift_delivers(self, cm5):
        res = run_spmd(cm5, ring_shift, 100)
        assert res.P == 64
        assert res.returns == [100 + (r - 1) % 64 for r in range(64)]

    def test_time_positive_and_matches_trace(self, cm5):
        res = run_spmd(cm5, ring_shift, 0)
        assert res.time_us > 0
        assert res.trace.measured_us == pytest.approx(res.time_us)

    def test_trace_contents(self, cm5):
        res = run_spmd(cm5, ring_shift, 0)
        assert len(res.trace) == 1
        step = res.trace[0]
        assert step.label == "shift"
        assert step.phase.relation().is_full_h_relation(64)

    def test_subset_of_machine(self, cm5):
        res = run_spmd(cm5, ring_shift, 0, P=8)
        assert res.P == 8
        assert len(res.returns) == 8

    def test_oversubscription_rejected(self, cm5):
        with pytest.raises(SimulationError):
            run_spmd(cm5, ring_shift, 0, P=128)

    def test_deterministic_given_seed(self):
        r1 = run_spmd(CM5(seed=5), ring_shift, 0)
        r2 = run_spmd(CM5(seed=5), ring_shift, 0)
        assert r1.time_us == r2.time_us


class TestComputeCharging:
    def test_work_advances_clock(self, cm5):
        def prog(ctx):
            ctx.charge(Flops(10_000))
            yield ctx.sync()

        res = run_spmd(cm5, prog)
        assert res.time_us >= 10_000 * 0.9 * cm5.nominal.alpha

    def test_uncharged_compute_is_free(self, cm5):
        def prog(ctx):
            _ = sum(range(1000))  # host work, no charge
            yield ctx.sync()

        res = run_spmd(cm5, prog)
        # only the barrier cost remains
        assert res.time_us < 1000

    def test_work_recorded_in_trace(self, cm5):
        def prog(ctx):
            ctx.charge(Flops(500))
            yield ctx.sync()

        res = run_spmd(cm5, prog)
        assert all(isinstance(w, Flops) for w in res.trace[0].work[0])


class TestMultiSuperstep:
    def test_messages_not_visible_before_sync(self, cm5):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.put(1, 42, nbytes=8, tag="x")
            early = ctx.has_message("x")
            yield ctx.sync()
            late = ctx.rank == 1 and ctx.get(0, "x") == 42
            return (early, late)

        res = run_spmd(cm5, prog, P=2)
        assert res.returns[1] == (False, True)

    def test_pipeline_over_supersteps(self, cm5):
        def prog(ctx):
            value = ctx.rank
            for step in range(5):
                ctx.put((ctx.rank + 1) % ctx.P, value, nbytes=8, tag=step)
                yield ctx.sync(f"s{step}")
                value = ctx.get(tag=step)
            return value

        res = run_spmd(cm5, prog, P=8)
        assert res.returns == [(r - 5) % 8 for r in range(8)]
        assert len(res.trace) == 5

    def test_unreceived_message_raises(self, cm5):
        def prog(ctx):
            yield ctx.sync()
            ctx.get(tag="never-sent")
            yield ctx.sync()

        with pytest.raises(MailboxError):
            run_spmd(cm5, prog, P=2)


class TestProgramValidation:
    def test_non_generator_rejected(self, cm5):
        def not_a_gen(ctx):
            return 42

        with pytest.raises(SimulationError, match="generator"):
            run_spmd(cm5, not_a_gen)

    def test_bad_yield_rejected(self, cm5):
        def prog(ctx):
            yield "not-a-token"

        with pytest.raises(SimulationError, match="sync"):
            run_spmd(cm5, prog, P=2)

    def test_livelock_guard(self, cm5):
        def prog(ctx):
            while True:
                yield ctx.sync()

        with pytest.raises(Exception, match="supersteps"):
            run_spmd(cm5, prog, P=2, max_supersteps=10)

    def test_bad_destination_rejected(self, cm5):
        def prog(ctx):
            ctx.put(ctx.P + 3, 0, nbytes=4)
            yield ctx.sync()

        with pytest.raises(SimulationError):
            run_spmd(cm5, prog, P=2)


class TestNonUniformTermination:
    def test_some_procs_finish_early(self, cm5):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.put(1, "hello", nbytes=5, tag="a")
                yield ctx.sync()
                ctx.put(1, "world", nbytes=5, tag="b")
                yield ctx.sync()
            elif ctx.rank == 1:
                yield ctx.sync()
                yield ctx.sync()
                return (ctx.get(0, "a"), ctx.get(0, "b"))
            else:
                yield ctx.sync()

        res = run_spmd(cm5, prog, P=4)
        assert res.returns[1] == ("hello", "world")

    def test_trailing_sends_flushed(self, cm5):
        """A send issued right before program end is still priced."""

        def prog(ctx):
            yield ctx.sync()
            if ctx.rank == 0:
                ctx.put(1, 1, nbytes=8)

        res = run_spmd(cm5, prog, P=2)
        assert res.trace.total_messages == 1


class TestSIMDLockstep:
    def test_maspar_clocks_equalised(self):
        m = MasParMP1(P=64, seed=3)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.charge(Flops(10_000))
            yield ctx.sync()

        res = run_spmd(m, prog)
        assert np.allclose(res.clocks, res.clocks[0])


class TestRunResultProfile:
    def test_profile_sums_to_total(self, cm5):
        def prog(ctx):
            for it in range(3):
                ctx.put((ctx.rank + 1) % ctx.P, it, nbytes=8, tag=it)
                yield ctx.sync(f"phase-{it}")
                ctx.get(tag=it)

        res = run_spmd(cm5, prog, P=8)
        prof = res.profile()
        assert set(prof) == {"phase"}
        assert sum(prof.values()) == pytest.approx(res.time_us)
