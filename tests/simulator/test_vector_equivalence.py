"""Vector fast path vs generator engine: exact equivalence.

The contract of :func:`repro.simulator.run_spmd_vector` is *bit
identity*: for every algorithm with a vector port, running it through
the vector engine must produce exactly the same clocks, trace
(phases, work items, labels, measured times) and per-rank results as
the per-rank generator engine — same machine seed, same draws, same
floating point.  These tests enforce that across machines, processor
counts and seeds, plus property-style sweeps over randomly drawn
configurations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import apsp, bitonic, lu, matmul, radix, samplesort
from repro.core.errors import SimulationError
from repro.machines import CM5, GCel, MasParMP1, ModernCluster, T800Grid
from repro.simulator.vector import resolve_engine

MACHINES = {
    "maspar": MasParMP1,
    "gcel": GCel,
    "cm5": CM5,
    "t800": T800Grid,
    "modern": ModernCluster,
}


def fresh(name: str, seed: int):
    return MACHINES[name](seed=seed)


def assert_runs_identical(g, v):
    """Every observable of the two runs must match exactly."""
    assert g.time_us == v.time_us
    assert np.array_equal(g.clocks, v.clocks)
    assert len(g.returns) == len(v.returns)
    for a, b in zip(g.returns, v.returns):
        assert np.array_equal(np.asarray(a), np.asarray(b))
    assert len(g.trace.supersteps) == len(v.trace.supersteps)
    for a, b in zip(g.trace.supersteps, v.trace.supersteps):
        assert a.label == b.label
        assert a.measured_us == b.measured_us
        assert a.work == b.work
        pa, pb = a.phase, b.phase
        assert pa.stagger == pb.stagger
        for field in ("src", "dst", "count", "msg_bytes", "step"):
            assert np.array_equal(getattr(pa, field), getattr(pb, field)), \
                f"phase field {field} differs in superstep {a.label!r}"


def both(run_fn, machine_name, machine_seed, *args, **kwargs):
    g = run_fn(fresh(machine_name, machine_seed), *args,
               engine="generator", **kwargs)
    v = run_fn(fresh(machine_name, machine_seed), *args,
               engine="vector", **kwargs)
    return g, v


class TestApspEquivalence:
    @pytest.mark.parametrize("machine",
                             ["maspar", "gcel", "cm5", "t800", "modern"])
    @pytest.mark.parametrize("N,P", [(32, 16), (16, 64)])
    def test_machines_and_regimes(self, machine, N, P):
        # (32, 16): M >= sqrt(P) scatter+allgather regime;
        # (16, 64): M < sqrt(P) scatter+doubling regime
        g, v = both(apsp.run, machine, 3, N, P=P, seed=1)
        assert_runs_identical(g, v)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_seeds(self, seed):
        g, v = both(apsp.run, "maspar", seed, 32, P=64, seed=seed)
        assert_runs_identical(g, v)

    def test_result_is_correct(self):
        v = apsp.run(fresh("cm5", 0), 32, P=16, seed=5, engine="vector")
        D = v.inputs
        got = apsp.assemble(16, 32, v.returns)
        assert np.array_equal(got, apsp.reference_apsp(D))

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(machine=st.sampled_from(["maspar", "gcel", "cm5"]),
           side=st.sampled_from([2, 4]),
           mult=st.sampled_from([1, 2, 4, 8]),  # M < side needs a power of 2
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_property_sweep(self, machine, side, mult, seed):
        N, P = side * mult, side * side
        g, v = both(apsp.run, machine, seed, N, P=P, seed=seed)
        assert_runs_identical(g, v)


class TestBitonicEquivalence:
    @pytest.mark.parametrize("machine",
                             ["maspar", "gcel", "cm5", "t800", "modern"])
    @pytest.mark.parametrize("variant", bitonic.VARIANTS)
    def test_machines_and_variants(self, machine, variant):
        g, v = both(bitonic.run, machine, 11, 24, variant=variant, P=64,
                    seed=2)
        assert_runs_identical(g, v)

    def test_sync_every_chunking(self):
        # M > sync_every forces the multi-superstep chunked exchanges
        g, v = both(bitonic.run, "gcel", 5, 300, variant="bsp-sync", P=16,
                    seed=3, sync_every=128)
        assert_runs_identical(g, v)

    def test_group_words(self):
        g, v = both(bitonic.run, "maspar", 1, 32, variant="bsp", P=256,
                    seed=0, group_words=4)
        assert_runs_identical(g, v)

    def test_result_is_sorted(self):
        v = bitonic.run(fresh("maspar", 0), 16, variant="bsp", P=64,
                        seed=9, engine="vector")
        assert bitonic.is_globally_sorted(v.returns)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(machine=st.sampled_from(["maspar", "gcel", "cm5"]),
           variant=st.sampled_from(bitonic.VARIANTS),
           log_p=st.integers(min_value=1, max_value=5),
           M=st.integers(min_value=1, max_value=48),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_property_sweep(self, machine, variant, log_p, M, seed):
        g, v = both(bitonic.run, machine, seed, M, variant=variant,
                    P=1 << log_p, seed=seed)
        assert_runs_identical(g, v)


class TestMatmulEquivalence:
    @pytest.mark.parametrize("machine", ["gcel", "cm5", "t800"])
    @pytest.mark.parametrize("variant", matmul.VARIANTS)
    def test_machines_and_variants(self, machine, variant):
        g, v = both(matmul.run, machine, 13, 48, variant=variant, P=64,
                    seed=4)
        assert_runs_identical(g, v)

    def test_simd_self_sends(self):
        # SIMD PEs execute the router op for their own block too; the
        # vector port must keep those self-messages in the phase
        g, v = both(matmul.run, "maspar", 0, 100, variant="bsp", P=1000,
                    seed=0)
        assert_runs_identical(g, v)

    def test_result_is_correct(self):
        v = matmul.run(fresh("cm5", 0), 64, variant="bsp-staggered",
                       seed=6, engine="vector")
        A, B = v.inputs
        got = matmul.assemble(v.setup, v.returns)
        assert np.array_equal(got, matmul.assemble(
            v.setup, matmul.run(fresh("cm5", 0), 64,
                                variant="bsp-staggered", seed=6,
                                engine="generator").returns))
        assert np.allclose(got, A @ B)

    def test_layout_variants_fall_back(self):
        with pytest.raises(SimulationError, match="vector"):
            matmul.run(fresh("cm5", 0), 64, variant="bsp-2d",
                       engine="vector")
        # auto silently picks the generator engine for layout variants
        r = matmul.run(fresh("cm5", 0), 64, variant="bsp-2d", engine="auto")
        assert r.time_us > 0


class TestSampleSortEquivalence:
    @pytest.mark.parametrize("machine",
                             ["maspar", "gcel", "cm5", "t800", "modern"])
    @pytest.mark.parametrize("variant", samplesort.VARIANTS)
    def test_machines_and_variants(self, machine, variant):
        g, v = both(samplesort.run, machine, 17, 64, variant=variant,
                    oversample=8, P=16, seed=5)
        assert_runs_identical(g, v)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_seeds(self, seed):
        g, v = both(samplesort.run, "gcel", seed, 48, variant="bpram",
                    oversample=16, P=16, seed=seed)
        assert_runs_identical(g, v)

    def test_uneven_buckets(self):
        # tiny oversample -> badly skewed buckets; the global-sort split
        # must still reproduce every rank's radix-sorted bucket exactly
        g, v = both(samplesort.run, "cm5", 2, 96, variant="bsp",
                    oversample=1, P=16, seed=8)
        assert_runs_identical(g, v)

    def test_result_is_sorted_permutation(self):
        v = samplesort.run(fresh("maspar", 0), 64, variant="bpram",
                           oversample=8, P=16, seed=9, engine="vector")
        out = np.concatenate([np.asarray(b).ravel() for b in v.returns])
        assert np.array_equal(out, np.sort(out))  # globally sorted
        assert np.array_equal(np.sort(out),
                              np.sort(np.asarray(v.inputs).ravel()))

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(machine=st.sampled_from(["maspar", "gcel", "cm5"]),
           variant=st.sampled_from(samplesort.VARIANTS),
           P=st.sampled_from([4, 16]),
           M=st.integers(min_value=8, max_value=96),
           oversample=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_property_sweep(self, machine, variant, P, M, oversample, seed):
        g, v = both(samplesort.run, machine, seed, M, variant=variant,
                    oversample=oversample, P=P, seed=seed)
        assert_runs_identical(g, v)


class TestRadixEquivalence:
    @pytest.mark.parametrize("machine",
                             ["maspar", "gcel", "cm5", "t800", "modern"])
    @pytest.mark.parametrize("variant", radix.VARIANTS)
    def test_machines_and_variants(self, machine, variant):
        g, v = both(radix.run, machine, 11, 64, variant=variant, P=16,
                    seed=2)
        assert_runs_identical(g, v)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_seeds(self, seed):
        g, v = both(radix.run, "gcel", seed, 96, variant="bpram", P=16,
                    seed=seed)
        assert_runs_identical(g, v)

    def test_modern_full_width(self):
        # the fat-tree profile at its native P: the batched pricer's
        # padded (phase.P < machine.P) incast/permutation analysis must
        # agree with the scalar loop bit-for-bit
        g, v = both(radix.run, "modern", 3, 64, variant="bpram", P=256,
                    seed=1)
        assert_runs_identical(g, v)

    def test_narrow_keys(self):
        # key_bits barely above log2(P): the finishing sort covers only
        # two low bits
        g, v = both(radix.run, "cm5", 5, 48, variant="bsp", P=16, seed=4,
                    key_bits=6)
        assert_runs_identical(g, v)

    def test_result_is_sorted_permutation(self):
        v = radix.run(fresh("maspar", 0), 64, variant="bpram", P=16,
                      seed=9, engine="vector")
        out = np.concatenate([np.asarray(b).ravel() for b in v.returns])
        assert np.array_equal(out, np.sort(out))  # globally sorted
        assert np.array_equal(np.sort(out),
                              np.sort(np.asarray(v.inputs).ravel()))

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(machine=st.sampled_from(["maspar", "gcel", "modern"]),
           variant=st.sampled_from(radix.VARIANTS),
           P=st.sampled_from([4, 16, 64]),
           M=st.integers(min_value=8, max_value=96),
           key_bits=st.sampled_from([8, 16, 32]),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_property_sweep(self, machine, variant, P, M, key_bits, seed):
        g, v = both(radix.run, machine, seed, M, variant=variant, P=P,
                    seed=seed, key_bits=key_bits)
        assert_runs_identical(g, v)


class TestLuEquivalence:
    @pytest.mark.parametrize("machine",
                             ["maspar", "gcel", "cm5", "t800", "modern"])
    @pytest.mark.parametrize("N,P", [(32, 16), (16, 64)])
    def test_machines_and_regimes(self, machine, N, P):
        # (32, 16): blocks bigger than the grid; (16, 64): 2x2 blocks on
        # an 8x8 grid — the broadcasts dominate
        g, v = both(lu.run, machine, 19, N, P=P, seed=1)
        assert_runs_identical(g, v)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_seeds(self, seed):
        g, v = both(lu.run, "gcel", seed, 24, P=16, seed=seed)
        assert_runs_identical(g, v)

    def test_single_processor_grid(self):
        g, v = both(lu.run, "cm5", 0, 8, P=1, seed=2)
        assert_runs_identical(g, v)

    def test_result_is_correct(self):
        v = lu.run(fresh("cm5", 0), 32, P=16, seed=5, engine="vector")
        A = v.inputs
        got = lu.assemble(16, 32, v.returns)
        L, U = lu.reference_lu(A)
        want = np.tril(L, -1) + U
        assert np.array_equal(got, want)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(machine=st.sampled_from(["maspar", "gcel", "cm5"]),
           side=st.sampled_from([1, 2, 4]),
           mult=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_property_sweep(self, machine, side, mult, seed):
        N, P = side * mult, side * side
        g, v = both(lu.run, machine, seed, N, P=P, seed=seed)
        assert_runs_identical(g, v)


class TestResolveEngine:
    def test_auto_prefers_ir(self):
        assert resolve_engine("auto") == "ir"
        assert resolve_engine("auto", vector_ok=False) == "generator"

    def test_explicit(self):
        assert resolve_engine("generator") == "generator"
        assert resolve_engine("vector") == "vector"
        assert resolve_engine("ir") == "ir"

    def test_ir_requires_vector_port(self):
        # Programs that opt out of the vector context can't be lowered
        # either; explicit "ir" without a port errors like "vector".
        with pytest.raises(SimulationError):
            resolve_engine("ir", vector_ok=False)

    def test_unknown_engine(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            resolve_engine("turbo")

    def test_vector_unsupported_raises(self):
        with pytest.raises(SimulationError):
            resolve_engine("vector", vector_ok=False)
