"""Tests for the processor context API."""

import numpy as np
import pytest

from repro.core.errors import MailboxError, SimulationError
from repro.simulator.context import ProcContext


@pytest.fixture
def ctx():
    return ProcContext(rank=1, P=8, word_bytes=4)


class TestPut:
    def test_put_records_group(self, ctx):
        ctx.put(2, np.zeros(10, dtype=np.float64), tag="t")
        vals, tags, _, _ = ctx._drain()
        dst, count, msg_bytes, step = vals
        assert dst == 2 and count == 1 and msg_bytes == 80 and tags == ["t"]

    def test_put_words_splits_into_messages(self, ctx):
        ctx.put_words(3, 16)
        vals, _, _, _ = ctx._drain()
        _, count, msg_bytes, _ = vals
        assert count == 16 and msg_bytes == 4

    def test_explicit_nbytes(self, ctx):
        ctx.put(0, None, nbytes=100, count=4)
        vals, _, _, _ = ctx._drain()
        _, count, msg_bytes, _ = vals
        assert count == 4 and msg_bytes == 25

    def test_columnar_accumulation(self, ctx):
        ctx.put(2, None, nbytes=8, step=1)
        ctx.put(3, None, nbytes=16, count=2, step=4, tag="b")
        vals, tags, payloads, _ = ctx._drain()
        assert vals == [2, 1, 8, 1, 3, 2, 8, 4]
        assert tags == [None, "b"] and payloads == [None, None]

    def test_payload_copied_by_default(self, ctx):
        buf = np.arange(4)
        ctx.put(2, buf)
        buf[:] = -1
        _, _, payloads, _ = ctx._drain()
        assert payloads[0].tolist() == [0, 1, 2, 3]

    def test_copy_false_aliases(self, ctx):
        buf = np.arange(4)
        ctx.put(2, buf, copy=False)
        buf[:] = -1
        _, _, payloads, _ = ctx._drain()
        assert payloads[0][0] == -1

    def test_scalar_payload_size_inferred(self, ctx):
        ctx.put(0, 3.14)
        vals, _, _, _ = ctx._drain()
        assert vals[2] == 8

    def test_numeric_list_sized_without_recursion(self, ctx):
        ctx.put(0, [1.0] * 1000)
        vals, _, _, _ = ctx._drain()
        assert vals[2] == 8000

    def test_dict_payload_sized(self, ctx):
        ctx.put(0, {"a": 1.0, "b": np.zeros(4)})
        vals, _, _, _ = ctx._drain()
        assert vals[2] == 8 + 32

    def test_nested_list_still_recursive(self, ctx):
        ctx.put(0, [np.zeros(2), np.zeros(3)])
        vals, _, _, _ = ctx._drain()
        assert vals[2] == 40

    def test_bad_payload_needs_nbytes(self, ctx):
        with pytest.raises(SimulationError, match="nbytes"):
            ctx.put(0, object())

    def test_bad_destination(self, ctx):
        with pytest.raises(SimulationError):
            ctx.put(8, 0, nbytes=4)

    def test_bad_count(self, ctx):
        with pytest.raises(SimulationError):
            ctx.put(0, 0, nbytes=4, count=0)


class TestMailbox:
    def test_fifo_per_tag(self, ctx):
        ctx._deliver(0, "t", "first")
        ctx._deliver(2, "t", "second")
        assert ctx.get(tag="t") == "first"
        assert ctx.get(tag="t") == "second"

    def test_get_by_source(self, ctx):
        ctx._deliver(0, "t", "a")
        ctx._deliver(2, "t", "b")
        assert ctx.get(src=2, tag="t") == "b"
        assert ctx.get(src=0, tag="t") == "a"

    def test_missing_message_raises(self, ctx):
        with pytest.raises(MailboxError):
            ctx.get(tag="nothing")

    def test_collect_by_source(self, ctx):
        ctx._deliver(0, "t", "a")
        ctx._deliver(2, "t", "b")
        assert ctx.collect("t") == {0: "a", 2: "b"}
        assert not ctx.has_message("t")

    def test_collect_list_order(self, ctx):
        ctx._deliver(5, None, 1)
        ctx._deliver(3, None, 2)
        assert ctx.collect_list() == [(5, 1), (3, 2)]


class TestWorkCharging:
    def test_charge_helpers(self, ctx):
        ctx.charge_flops(10)
        ctx.charge_matmul(2, 3, 4)
        ctx.charge_sort(100)
        ctx.charge_merge(50)
        ctx.charge_compare(5)
        ctx.charge_copy(8)
        ctx.charge_us(1.0)
        *_, work = ctx._drain()
        assert len(work) == 7

    def test_drain_resets(self, ctx):
        ctx.charge_flops(10)
        ctx.put(0, None, nbytes=8)
        ctx._drain()
        vals, tags, payloads, work = ctx._drain()
        assert work == [] and vals == [] and tags == [] and payloads == []


class TestSyncToken:
    def test_defaults(self, ctx):
        tok = ctx.sync()
        assert tok.barrier and tok.stagger is None and tok.label == ""

    def test_overrides(self, ctx):
        tok = ctx.sync("phase-1", stagger=False, barrier=False)
        assert tok.label == "phase-1"
        assert tok.stagger is False
        assert not tok.barrier
