"""Multi-process fleet integration tests (real ``repro serve`` subprocess).

One module-scoped 2-process fleet backs the read-only tests; the signal
and respawn tests boot their own so they can kill it.  Everything here
asserts the tentpole contract: byte-identical responses to the
single-process and offline paths, fleet-aggregated ``/metrics``, shared
warm results across workers, and a supervisor that drains and reaps on
SIGINT/SIGTERM with no orphans left behind.
"""

from __future__ import annotations

import json
import signal
import socket
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from fleetharness import (FleetProc, metric_value, pid_alive,  # noqa: E402
                          raw_request, wait_dead)

DOC = {"machine": "gcel", "model": "bsp", "algorithm": "bitonic",
       "size": 32}


@pytest.fixture(scope="module")
def fleet():
    with FleetProc(2) as proc:
        yield proc


class TestFleetBoot:
    def test_banner_names_topology(self, fleet):
        banner = next(line for line in fleet.lines if "repro.fleet" in line)
        assert "processes=2" in banner
        assert "mode=" in banner and "arena=" in banner

    def test_healthz_reports_fleet_topology(self, fleet):
        status, payload = raw_request(fleet.port, "GET", "/healthz")
        assert status == 200
        doc = json.loads(payload)
        assert doc["processes"] == 2
        assert doc["arena"] is True
        assert doc["worker_index"] in (0, 1)

    def test_two_live_workers(self, fleet):
        pids = fleet.worker_pids()
        assert sorted(pids) == [0, 1]
        assert all(pid_alive(p) for p in pids.values())


class TestFleetServing:
    def test_responses_byte_identical_across_workers(self, fleet):
        body = json.dumps(DOC).encode()
        answers = set()
        for _ in range(24):
            status, payload = raw_request(fleet.port, "POST", "/predict",
                                          body)
            assert status == 200
            answers.add(payload)
        assert len(answers) == 1, \
            "workers disagreed on bytes for an identical request"

    def test_fleet_bytes_match_single_process_and_offline(self, fleet):
        from repro.service.oracle import predict_offline
        from repro.service.server import ServiceConfig, ServiceThread

        body = json.dumps(DOC).encode()
        _, fleet_payload = raw_request(fleet.port, "POST", "/predict", body)

        config = ServiceConfig(port=0, workers=2, warm=False)
        with ServiceThread(config) as thread:
            _, solo_payload = raw_request(thread.port, "POST", "/predict",
                                          body)
        assert fleet_payload == solo_payload
        offline = (json.dumps(predict_offline(DOC)) + "\n").encode()
        assert fleet_payload == offline

    def test_metrics_aggregates_fleet_wide(self, fleet):
        import time

        # enough fresh connections that both workers serve some and at
        # least one warms its LRU from the sibling's arena entry
        body = json.dumps(DOC).encode()
        for _ in range(24):
            raw_request(fleet.port, "POST", "/predict", body)
        # sibling snapshots republish every 0.5s, so the fleet totals
        # are eventually consistent — poll until the arena traffic from
        # the burst above is visible from whichever worker we scrape
        deadline = time.monotonic() + 10.0
        while True:
            status, payload = raw_request(fleet.port, "GET", "/metrics")
            assert status == 200
            text = payload.decode()
            puts = metric_value(text, "repro_arena_ops_total",
                                '{op="put"}') or 0
            hits = metric_value(text, "repro_arena_ops_total",
                                '{op="hit"}') or 0
            if (puts >= 1 and hits >= 1) or time.monotonic() > deadline:
                break
            time.sleep(0.2)
        assert metric_value(text, "repro_fleet_workers") == 2.0
        assert (metric_value(text, "repro_fleet_spawned_total") or 0) >= 2
        assert puts >= 1, "no worker published to the arena"
        assert hits >= 1, \
            "no cross-process arena hit despite a shared warm key"
        # info gauge merges with max, so the fleet reports exactly 1
        assert 'repro_service_info{' in text

    def test_unknown_route_is_404_everywhere(self, fleet):
        for _ in range(4):
            status, _ = raw_request(fleet.port, "GET", "/nope")
            assert status == 404


class TestFleetLifecycle:
    def test_killed_worker_respawns(self, fleet):
        import os

        pids = fleet.worker_pids()
        victim_index, victim_pid = sorted(pids.items())[0]
        os.kill(victim_pid, signal.SIGKILL)
        new_pid = fleet.wait_respawn(victim_index, victim_pid)
        assert new_pid != victim_pid
        assert not pid_alive(victim_pid)
        # the fleet keeps serving, replacement included
        status, payload = raw_request(fleet.port, "GET", "/healthz")
        assert status == 200
        assert json.loads(payload)["processes"] == 2
        assert any("respawning" in line for line in fleet.lines)

    @pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT],
                             ids=["SIGTERM", "SIGINT"])
    def test_signal_drains_and_reaps_no_orphans(self, sig):
        with FleetProc(2) as proc:
            port = proc.port
            pids = list(proc.worker_pids().values())
            assert len(pids) == 2
            proc.send(sig)
            assert proc.wait(timeout=30) == 0
            assert wait_dead(pids), f"orphaned workers: {pids}"
            assert any("drained and stopped" in line for line in proc.lines)
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port),
                                         timeout=2).close()
