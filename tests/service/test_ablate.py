"""``POST /ablate``: served == offline bytes, LRU dedup, validation.

The acceptance oracle: a served ablation report must be byte-identical
to :func:`repro.service.oracle.ablate_offline` — the dispatcher, the
LRU and the service's own result cache are not allowed to change a
single byte.
"""

import json
import re

import pytest

from repro.service.oracle import ablate_offline

from .conftest import http

#: a single-component request so the in-worker matrix stays sub-second.
DOC = {"components": ["sync-loss"], "cells": ["apsp"], "scale": 0.3,
       "seed": 0}


def offline(doc):
    # round-trip like the HTTP layer does, so comparisons are byte-level
    return json.loads(json.dumps(ablate_offline(doc)))


def lru_hits(port) -> int:
    _, text, _ = http(port, "GET", "/metrics")
    m = re.search(r'repro_lru_hits_total\{kind="ablate"\} (\d+)', text)
    return int(m.group(1)) if m else 0


class TestServedBytes:
    def test_served_equals_offline(self, service_thread):
        status, body, _ = http(service_thread.port, "POST", "/ablate", DOC)
        assert status == 200
        assert body == offline(DOC)

    def test_repeat_request_is_an_lru_hit_with_same_bytes(self,
                                                          service_thread):
        port = service_thread.port
        doc = dict(DOC, seed=1)
        before = lru_hits(port)
        _, first, _ = http(port, "POST", "/ablate", doc)
        assert lru_hits(port) == before
        _, second, _ = http(port, "POST", "/ablate", doc)
        assert second == first
        assert lru_hits(port) == before + 1

    def test_selection_order_shares_one_lru_entry(self, service_thread):
        """components/cells are canonicalised into the LRU key, so
        permuted selections dedupe onto the same cached report."""
        port = service_thread.port
        doc = {"components": ["sync-loss", "cube-discount"],
               "cells": ["apsp", "bitonic"], "scale": 0.3, "seed": 2}
        flipped = {"components": ["cube-discount", "sync-loss"],
                   "cells": ["bitonic", "apsp"], "scale": 0.3, "seed": 2}
        before = lru_hits(port)
        _, first, _ = http(port, "POST", "/ablate", doc)
        _, second, _ = http(port, "POST", "/ablate", flipped)
        assert second == first
        assert lru_hits(port) == before + 1


class TestValidation:
    @pytest.mark.parametrize("doc,fragment", [
        ({"components": ["bogus"]}, "unknown component"),
        ({"cells": ["bogus"]}, "unknown cell"),
        ({"components": []}, "non-empty list"),
        ({"scale": 1.5}, "scale"),
        ({"seed": -1}, "seed"),
        ([], "JSON object"),
    ])
    def test_bad_request_answers_422(self, service_thread, doc, fragment):
        status, body, _ = http(service_thread.port, "POST", "/ablate", doc)
        assert status == 422
        assert fragment in body["error"]

    def test_capabilities_advertise_the_catalog(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET", "/capabilities")
        assert status == 200
        abl = doc["ablation"]
        assert {c["name"] for c in abl["components"]} >= \
            {"sync-loss", "cube-discount", "endpoint-contention"}
        for comp in abl["components"]:
            assert set(comp) == {"name", "machine", "paper", "summary"}
        assert "apsp" in abl["cells"]
