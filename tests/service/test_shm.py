"""Shared-arena and metrics-board unit + property tests.

The arena's contract is narrow and absolute: ``get`` returns exactly
the bytes some ``put`` stored under that key, or ``None`` — never torn,
foreign, or corrupted data.  Hypothesis sweeps key/value shapes over a
plain-``bytearray`` arena; the fork-based tests drive the same code
over real ``multiprocessing.shared_memory`` with concurrent writers.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.shm import (ArenaStats, MetricsBoard, SharedArena,
                               arena_size)

fork_only = pytest.mark.skipif(not hasattr(os, "fork"),
                               reason="needs os.fork")


class TestArenaBasics:
    def test_roundtrip(self):
        arena = SharedArena.over(64, 4096)
        assert arena.put(b"k", b"hello world")
        assert arena.get(b"k") == b"hello world"
        assert arena.get(b"other") is None

    def test_overwrite_same_key(self):
        arena = SharedArena.over(64, 4096)
        arena.put(b"k", b"v1")
        arena.put(b"k", b"v2")
        assert arena.get(b"k") == b"v2"
        assert arena.entries() == 1

    def test_empty_value_roundtrips(self):
        arena = SharedArena.over(8, 1024)
        assert arena.put(b"k", b"")
        assert arena.get(b"k") == b""

    def test_oversize_value_is_skipped(self):
        arena = SharedArena.over(8, 256)
        assert not arena.put(b"k", b"x" * 4096)
        assert arena.stats.skips == 1
        assert arena.get(b"k") is None

    def test_empty_key_is_skipped(self):
        arena = SharedArena.over(8, 256)
        assert not arena.put(b"", b"v")

    def test_invalidate(self):
        arena = SharedArena.over(64, 1024)
        arena.put(b"k", b"v")
        assert arena.invalidate(b"k")
        assert arena.get(b"k") is None
        assert not arena.invalidate(b"missing")

    def test_eviction_prefers_oldest(self):
        # tiny arena: every key collides, the oldest ticket is evicted
        arena = SharedArena.over(1, 1024)
        arena.put(b"a", b"1")
        arena.put(b"b", b"2")
        assert arena.get(b"b") == b"2"
        assert arena.get(b"a") is None

    def test_corrupted_slot_is_quarantined(self):
        from repro.service.shm import _SLOT

        arena = SharedArena.over(8, 1024)
        arena.put(b"k", b"payload")
        # flip a payload byte behind the checksum's back
        for i in range(8):
            off = arena._off(i)
            _, _, _, klen, vlen, _ = _SLOT.unpack_from(arena.buf, off)
            if klen == 1 and bytes(arena.buf[off + _SLOT.size:
                                             off + _SLOT.size + 1]) == b"k":
                arena.buf[off + _SLOT.size + klen] ^= 0xFF
                break
        else:
            pytest.fail("slot for key b'k' not found")
        assert arena.get(b"k") is None
        assert arena.stats.quarantined == 1
        # the slot self-heals on the next put
        arena.put(b"k", b"payload")
        assert arena.get(b"k") == b"payload"

    def test_stats_shape(self):
        stats = ArenaStats()
        assert set(stats.as_dict()) == {"hit", "miss", "put", "skip",
                                        "quarantine", "contended"}

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SharedArena.over(0, 1024)
        with pytest.raises(ValueError):
            SharedArena.over(8, 8)

    def test_foreign_buffer_rejected(self):
        with pytest.raises(ValueError):
            SharedArena(bytearray(arena_size(8, 256)))


class TestArenaProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=48),
                              st.binary(max_size=1024)),
                    max_size=40))
    def test_get_is_exact_or_miss(self, items):
        """Bit-exact round-trips: a hit is the latest stored value."""
        arena = SharedArena.over(16, 2048)
        latest: dict[bytes, bytes] = {}
        for key, value in items:
            if arena.put(key, value):
                latest[key] = value
        for key, value in latest.items():
            got = arena.get(key)
            # eviction may drop a key, but never corrupt one
            assert got is None or got == value
        assert arena.stats.quarantined == 0

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.binary(min_size=1, max_size=32),
                           st.binary(max_size=512),
                           min_size=1, max_size=6))
    def test_small_sets_never_evict(self, mapping):
        """Fewer keys than slots/probes: every entry must survive."""
        arena = SharedArena.over(256, 1024)
        for key, value in mapping.items():
            assert arena.put(key, value)
        for key, value in mapping.items():
            assert arena.get(key) == value


def _hammer(name: str, worker: int, rounds: int, barrier, errors) -> None:
    """Concurrent-writer body: same keys, identical bytes per key."""
    arena = SharedArena.attach(name)
    try:
        barrier.wait(timeout=30)
        for r in range(rounds):
            for k in range(8):
                key = f"key-{k}".encode()
                value = (f"value-{k}:".encode() + b"x" * (17 * k))
                arena.put(key, value)
                got = arena.get(key)
                if got is not None and got != value:
                    errors.put(f"worker {worker}: key {key!r} returned "
                               f"{got!r}")
        if arena.stats.quarantined:
            errors.put(f"worker {worker}: "
                       f"{arena.stats.quarantined} quarantined")
    finally:
        arena.close()


@fork_only
class TestArenaConcurrency:
    def test_concurrent_writers_stay_bit_exact(self):
        """N processes hammering the same keys (identical bytes per key,
        as the single-flight discipline guarantees) never observe a torn
        or corrupted value — the seqlock+checksum ladder holds."""
        ctx = multiprocessing.get_context("fork")
        arena = SharedArena.create(slots=32, slot_bytes=1024)
        errors: multiprocessing.Queue = ctx.Queue()
        nproc = 3
        barrier = ctx.Barrier(nproc)
        procs = [ctx.Process(target=_hammer,
                             args=(arena.name, i, 120, barrier, errors))
                 for i in range(nproc)]
        try:
            for p in procs:
                p.start()
            for p in procs:
                p.join(60)
                assert p.exitcode == 0
            found = []
            while not errors.empty():
                found.append(errors.get())
            assert not found, found
            # parent still reads exact values afterwards
            for k in range(8):
                value = (f"value-{k}:".encode() + b"x" * (17 * k))
                got = arena.get(f"key-{k}".encode())
                assert got is None or got == value
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            arena.destroy()

    def test_attach_sees_creators_entries(self):
        arena = SharedArena.create(slots=16, slot_bytes=512)
        try:
            arena.put(b"shared", b"payload")
            peer = SharedArena.attach(arena.name)
            try:
                assert peer.get(b"shared") == b"payload"
                peer.put(b"back", b"atcha")
            finally:
                peer.close()
            assert arena.get(b"back") == b"atcha"
        finally:
            arena.destroy()


class TestMetricsBoard:
    def test_publish_read_roundtrip(self):
        board = MetricsBoard.over(2)
        assert board.publish(0, {"metrics": [{"name": "m"}]})
        doc = board.read(0)
        assert doc["metrics"] == [{"name": "m"}]
        assert doc["_pid"] == os.getpid()
        assert doc["_age_s"] >= 0.0

    def test_empty_region_reads_none(self):
        board = MetricsBoard.over(2)
        assert board.read(1) is None
        assert board.read_all() == []

    def test_oversize_payload_rejected(self):
        board = MetricsBoard.over(1, region_bytes=128)
        assert not board.publish(0, {"blob": "x" * 4096})

    def test_region_bounds(self):
        board = MetricsBoard.over(2)
        with pytest.raises(IndexError):
            board.read(2)

    def test_read_all_filters_dead_publishers(self):
        board = MetricsBoard.over(2)
        board.publish(0, {"worker": 0})
        board.publish(1, {"worker": 1})
        # forge a dead publisher pid in region 1's header
        import struct

        from repro.service.shm import _REGION

        seq, pid, stamp, length = _REGION.unpack_from(board.buf,
                                                      board._off(1))
        _REGION.pack_into(board.buf, board._off(1), seq, 2 ** 22 + 12345,
                          stamp, length)
        del struct
        alive = board.read_all()
        assert [d["worker"] for d in alive] == [0]
        everyone = board.read_all(require_alive=False)
        assert [d["worker"] for d in everyone] == [0, 1]

    @fork_only
    def test_cross_process_publish(self):
        ctx = multiprocessing.get_context("fork")
        board = MetricsBoard.create(2)

        def child() -> None:
            peer = MetricsBoard(board._shm.buf, 2, board.region_bytes)
            peer.publish(1, {"from": "child"})

        try:
            p = ctx.Process(target=child)
            p.start()
            p.join(30)
            assert p.exitcode == 0
            # the child is dead, so its region only shows up unfiltered
            docs = board.read_all(require_alive=False)
            assert {"from": "child"} == {
                k: v for d in docs for k, v in d.items()
                if not k.startswith("_")}
        finally:
            board.destroy()

    def test_json_payload_stays_compact(self):
        # snapshots of a full registry must fit the default region
        from repro.service.metrics import ServiceMetrics

        m = ServiceMetrics(version="1.0.0")
        for i in range(50):
            m.requests.inc(endpoint="/predict", status="200")
            m.latency.observe(0.001 * i, endpoint="/predict")
        payload = json.dumps({"metrics": m.snapshot()},
                             separators=(",", ":")).encode()
        assert len(payload) < 262144
