"""Micro-batcher unit tests (controlled evaluator, no simulator)."""

import asyncio

import pytest

from repro.service.batcher import LRUCache, MicroBatcher
from repro.service.metrics import ServiceMetrics


class TestLRUCache:
    def test_hit_miss_counters(self):
        lru = LRUCache(4)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert (lru.hits, lru.misses) == (1, 1)

    def test_eviction_order(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1     # refresh a; b is now oldest
        lru.put("c", 3)
        assert lru.get("b") is None  # evicted
        assert lru.get("a") == 1 and lru.get("c") == 3
        assert len(lru) == 2

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


def _run(coro):
    return asyncio.run(coro)


def _echo_evaluate(calls):
    """An evaluator that records each batch and echoes the payloads."""
    def evaluate(items):
        calls.append([key for _, key, _ in items])
        return {key: {"payload": payload} for _, key, payload in items}
    return evaluate


class TestMicroBatcher:
    def test_coalesces_concurrent_submissions(self):
        calls = []

        async def scenario():
            b = MicroBatcher(_echo_evaluate(calls), window_s=0.05,
                             max_batch=64, workers=1)
            await b.start()
            try:
                results = await asyncio.gather(*[
                    b.submit("predict", ("k", i), i) for i in range(10)])
            finally:
                await b.stop()
            return results

        results = _run(scenario())
        assert [r["payload"] for r in results] == list(range(10))
        # everything arrived inside one window -> one evaluator call
        assert len(calls) == 1
        assert len(calls[0]) == 10

    def test_lru_serves_repeats_without_reevaluation(self):
        calls = []

        async def scenario():
            b = MicroBatcher(_echo_evaluate(calls), window_s=0.01,
                             workers=1)
            await b.start()
            try:
                first = await b.submit("predict", ("same",), 1)
                again = await b.submit("predict", ("same",), 1)
            finally:
                await b.stop()
            return first, again

        first, again = _run(scenario())
        assert first == again
        assert sum(len(c) for c in calls) == 1  # one miss, one LRU hit

    def test_duplicate_keys_in_one_batch_deduplicate(self):
        calls = []

        async def scenario():
            b = MicroBatcher(_echo_evaluate(calls), window_s=0.05,
                             workers=1)
            await b.start()
            try:
                results = await asyncio.gather(*[
                    b.submit("predict", ("dup",), 7) for _ in range(8)])
            finally:
                await b.stop()
            return results

        results = _run(scenario())
        assert all(r == {"payload": 7} for r in results)
        assert sum(len(c) for c in calls) == 1

    def test_max_batch_splits_oversized_bursts(self):
        calls = []

        async def scenario():
            b = MicroBatcher(_echo_evaluate(calls), window_s=0.05,
                             max_batch=4, workers=2)
            await b.start()
            try:
                await asyncio.gather(*[
                    b.submit("predict", ("k", i), i) for i in range(10)])
            finally:
                await b.stop()

        _run(scenario())
        assert all(len(c) <= 4 for c in calls)
        assert sum(len(c) for c in calls) == 10

    def test_per_key_errors_reach_only_their_callers(self):
        def evaluate(items):
            out = {}
            for _, key, payload in items:
                out[key] = (ValueError(f"bad {key}") if payload == "boom"
                            else {"ok": True})
            return out

        async def scenario():
            b = MicroBatcher(evaluate, window_s=0.05, workers=1)
            await b.start()
            try:
                good, bad = await asyncio.gather(
                    b.submit("predict", ("g",), "fine"),
                    b.submit("predict", ("b",), "boom"),
                    return_exceptions=True)
            finally:
                await b.stop()
            return good, bad

        good, bad = _run(scenario())
        assert good == {"ok": True}
        assert isinstance(bad, ValueError)

    def test_whole_batch_crash_rejects_every_future(self):
        def evaluate(items):
            raise RuntimeError("evaluator died")

        async def scenario():
            b = MicroBatcher(evaluate, window_s=0.05, workers=1)
            await b.start()
            try:
                return await asyncio.gather(
                    *[b.submit("predict", (i,), i) for i in range(3)],
                    return_exceptions=True)
            finally:
                await b.stop()

        results = _run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_errors_are_not_cached(self):
        attempts = []

        def evaluate(items):
            attempts.append(len(items))
            if len(attempts) == 1:
                return {key: ValueError("first try fails")
                        for _, key, _ in items}
            return {key: {"ok": True} for _, key, _ in items}

        async def scenario():
            b = MicroBatcher(evaluate, window_s=0.01, workers=1)
            await b.start()
            try:
                with pytest.raises(ValueError):
                    await b.submit("predict", ("k",), 1)
                return await b.submit("predict", ("k",), 1)
            finally:
                await b.stop()

        assert _run(scenario()) == {"ok": True}
        assert len(attempts) == 2

    def test_metrics_observe_batches_and_lru(self):
        metrics = ServiceMetrics(version="test")

        async def scenario():
            b = MicroBatcher(_echo_evaluate([]), window_s=0.05, workers=1,
                             metrics=metrics)
            await b.start()
            try:
                await asyncio.gather(*[
                    b.submit("predict", ("k", i % 2), i % 2)
                    for i in range(6)])
                await b.submit("predict", ("k", 0), 0)  # a later hit
            finally:
                await b.stop()

        _run(scenario())
        assert metrics.batch_size.count() >= 1
        assert metrics.batch_size.mean() > 1
        assert metrics.lru_hits.total() >= 1
        assert metrics.lru_misses.total() >= 2

    def test_submit_before_start_is_an_error(self):
        async def scenario():
            b = MicroBatcher(_echo_evaluate([]))
            with pytest.raises(RuntimeError, match="start"):
                await b.submit("predict", ("k",), 1)

        _run(scenario())

    @pytest.mark.parametrize("kwargs", [
        {"window_s": -1}, {"max_batch": 0}, {"workers": 0},
    ])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(_echo_evaluate([]), **kwargs)


class TestArenaReadThrough:
    """The shared-arena layer on the dispatch path (fleet mode)."""

    @staticmethod
    def _arena():
        from repro.service.shm import SharedArena

        return SharedArena.over(64, 32768)

    def test_sibling_result_resolves_without_reevaluation(self):
        arena = self._arena()
        calls_a, calls_b = [], []

        async def scenario():
            a = MicroBatcher(_echo_evaluate(calls_a), window_s=0,
                             arena=arena)
            b = MicroBatcher(_echo_evaluate(calls_b), window_s=0,
                             arena=arena)
            await a.start()
            await b.start()
            first = await a.submit("predict", ("k", 1), {"doc": 1})
            second = await b.submit("predict", ("k", 1), {"doc": 1})
            await a.stop()
            await b.stop()
            return first, second

        first, second = _run(scenario())
        assert first == second
        assert calls_a == [[("k", 1)]]
        assert calls_b == [], "b re-evaluated despite a's arena entry"
        assert arena.stats.puts == 1 and arena.stats.hits == 1

    def test_arena_hit_fills_local_lru(self):
        arena = self._arena()
        calls = []

        async def scenario():
            a = MicroBatcher(_echo_evaluate(calls), window_s=0, arena=arena)
            await a.start()
            await a.submit("predict", ("k", 1), {"doc": 1})
            await a.stop()
            b = MicroBatcher(_echo_evaluate(calls), window_s=0, arena=arena)
            await b.start()
            await b.submit("predict", ("k", 1), {"doc": 1})
            await b.submit("predict", ("k", 1), {"doc": 1})
            await b.stop()
            return b

        b = _run(scenario())
        # first b-submit was an arena hit, the repeat a plain LRU hit
        assert arena.stats.hits == 1
        assert b.cache.hits == 1

    def test_unjsonable_results_stay_local(self):
        arena = self._arena()

        def evaluate(items):
            return {key: {"payload": {1, 2, 3}} for _, key, _ in items}

        async def scenario():
            a = MicroBatcher(evaluate, window_s=0, arena=arena)
            await a.start()
            got = await a.submit("predict", ("k", 1), {"doc": 1})
            await a.stop()
            return got

        got = _run(scenario())
        assert got == {"payload": {1, 2, 3}}
        assert arena.stats.puts == 0  # sets can't cross processes as JSON

    def test_no_arena_is_the_default(self):
        calls = []

        async def scenario():
            a = MicroBatcher(_echo_evaluate(calls), window_s=0)
            await a.start()
            got = await a.submit("predict", ("k", 1), {"doc": 1})
            await a.stop()
            return got

        assert _run(scenario()) == {"payload": {"doc": 1}}
