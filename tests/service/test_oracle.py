"""Oracle tests: request validation, offline pricing, batch equivalence."""

import pytest

from repro.service.oracle import (ALGORITHMS, MODELS, OracleError,
                                  PredictRequest, compare_offline,
                                  default_size, evaluate_batch,
                                  predict_offline)


class TestPredictRequest:
    def test_minimal_body(self):
        req = PredictRequest.from_json(
            {"machine": "gcel", "algorithm": "bitonic"})
        assert req.model == "bsp"
        assert req.size == default_size("bitonic")
        assert req.seed == 0

    def test_scale_shrinks_default_size(self):
        req = PredictRequest.from_json(
            {"machine": "gcel", "algorithm": "bitonic", "scale": 0.5})
        assert req.size == default_size("bitonic") // 2

    @pytest.mark.parametrize("doc,fragment", [
        ({"machine": "vax", "algorithm": "bitonic"}, "unknown machine"),
        ({"machine": "gcel", "algorithm": "quicksort"},
         "unknown algorithm"),
        ({"machine": "gcel", "algorithm": "bitonic", "model": "csp"},
         "unknown model"),
        ({"machine": "gcel", "algorithm": "bitonic", "size": -4},
         "size must be"),
        ({"machine": "gcel", "algorithm": "bitonic", "size": 2.5},
         "size must be"),
        ({"machine": "gcel", "algorithm": "bitonic", "size": True},
         "size must be"),
        ({"machine": "gcel", "algorithm": "bitonic", "scale": 0.0},
         "scale must be"),
        ({"machine": "gcel", "algorithm": "bitonic", "seed": -1},
         "seed must be"),
        ("not a dict", "JSON object"),
    ])
    def test_rejects_bad_bodies(self, doc, fragment):
        with pytest.raises(OracleError, match=fragment):
            PredictRequest.from_json(doc)


class TestPredictOffline:
    def test_breakdown_sums_to_prediction(self):
        out = predict_offline({"machine": "gcel", "model": "bsp",
                               "algorithm": "bitonic", "size": 64})
        b = out["breakdown"]
        # comp + comm must reproduce the total bit-for-bit (same
        # accumulation as CostModel.trace_cost, asserted inside the
        # oracle too)
        assert out["predicted_us"] > 0
        assert out["measured_us"] > 0
        assert b["comp_us"] > 0 and b["comm_us"] > 0
        assert out["supersteps"] >= out["syncs"] > 0

    def test_ebsp_needs_maspar(self):
        with pytest.raises(OracleError, match="e-bsp"):
            predict_offline({"machine": "gcel", "model": "e-bsp",
                             "algorithm": "bitonic", "size": 64})

    def test_ebsp_on_maspar(self):
        out = predict_offline({"machine": "maspar", "model": "e-bsp",
                               "algorithm": "bitonic", "size": 16})
        assert out["predicted_us"] > 0

    def test_impossible_size_is_client_error(self):
        # APSP needs sqrt(P) | N; 33 on a 64-node machine cannot run
        with pytest.raises(OracleError, match="cannot run"):
            predict_offline({"machine": "gcel", "model": "bsp",
                             "algorithm": "apsp", "size": 33})


class TestCompareOffline:
    def test_ranked_by_abs_error(self):
        out = compare_offline({"machine": "gcel", "algorithm": "apsp",
                               "size": 32})
        errors = [abs(c["error"]) for c in out["ranking"]]
        assert errors == sorted(errors)
        assert out["best_model"] == out["ranking"][0]["model"]
        # e-bsp is maspar-only, so 6 models price the gcel
        assert len(out["ranking"]) == 6
        assert out["measured_us"] > 0

    def test_maspar_includes_ebsp(self):
        out = compare_offline({"machine": "maspar", "algorithm": "bitonic",
                               "size": 16})
        assert "e-bsp" in [c["model"] for c in out["ranking"]]


def _req(machine, model, algorithm, size, seed=0):
    return PredictRequest(machine=machine, model=model,
                          algorithm=algorithm, size=size, seed=seed)


class TestEvaluateBatchEquivalence:
    """The acceptance gate: batching must never change a single bit."""

    # every algorithm once, several models, two MIMD machines + maspar
    MATRIX = [
        ("gcel", "bsp", "bitonic", 64),
        ("gcel", "mp-bsp", "bitonic-blk", 256),
        ("gcel", "mp-bpram", "apsp", 32),
        ("gcel", "pram", "lu", 32),
        ("gcel", "loggp", "samplesort", 128),
        ("cm5", "bsp", "matmul", 64),
        ("cm5", "mp-bsp", "matmul-naive", 64),
        ("cm5", "mp-bpram", "stencil", 32),
        ("maspar", "e-bsp", "bitonic", 16),
        ("modern", "bsf", "radix", 256),
        ("gcel", "bsf", "radix", 64),
    ]

    def test_mixed_batch_bit_identical_to_offline(self):
        reqs = [_req(*row) for row in self.MATRIX]
        items = [("predict", ("k", i), req) for i, req in enumerate(reqs)]
        # duplicate keys exercise simulation dedup inside the batch
        items.append(("predict", ("dup",), reqs[0]))
        out = evaluate_batch(items)
        for i, req in enumerate(reqs):
            offline = predict_offline(req)
            batched = out[("k", i)]
            assert batched == offline, (req, batched, offline)
        assert out[("dup",)] == out[("k", 0)]

    def test_same_model_group_coalesces_without_drift(self):
        # three workloads through ONE comm_cost_batch call (same
        # machine+model+seed group)
        reqs = [_req("gcel", "bsp", "bitonic", 64),
                _req("gcel", "bsp", "apsp", 32),
                _req("gcel", "bsp", "lu", 32)]
        out = evaluate_batch([("predict", (i,), r)
                              for i, r in enumerate(reqs)])
        for i, req in enumerate(reqs):
            assert out[(i,)] == predict_offline(req)

    def test_batch_with_compare_jobs(self):
        req = _req("gcel", "bsp", "apsp", 32)
        out = evaluate_batch([
            ("predict", ("p",), req),
            ("compare", ("c",), req),
        ])
        assert out[("c",)] == compare_offline(req)
        assert out[("p",)] == predict_offline(req)

    def test_bad_job_does_not_poison_batch(self):
        good = _req("gcel", "bsp", "bitonic", 64)
        bad = _req("gcel", "e-bsp", "bitonic", 64)   # e-bsp needs maspar
        worse = _req("gcel", "bsp", "apsp", 33)      # sqrt(P) does not divide
        out = evaluate_batch([
            ("predict", ("good",), good),
            ("predict", ("bad",), bad),
            ("predict", ("worse",), worse),
        ])
        assert out[("good",)] == predict_offline(good)
        assert isinstance(out[("bad",)], OracleError)
        assert isinstance(out[("worse",)], OracleError)


class TestRegistries:
    def test_every_algorithm_has_a_positive_default(self):
        for name in ALGORITHMS:
            assert default_size(name) > 0

    def test_model_list_is_stable(self):
        assert set(MODELS) == {"bsp", "mp-bsp", "mp-bpram", "pram",
                               "loggp", "bsf", "e-bsp"}
