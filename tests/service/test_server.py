"""End-to-end HTTP tests against a live server on a daemon thread."""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import ServiceConfig, ServiceThread
from repro.service.oracle import compare_offline, predict_offline

from .conftest import http


class TestHealthAndCatalogues:
    def test_healthz(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET", "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["uptime_s"] >= 0
        assert "version" in doc and "lru_entries" in doc

    def test_machines(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET", "/machines")
        assert status == 200
        names = {m["name"] for m in doc["machines"]}
        assert {"maspar", "gcel", "cm5", "t800", "modern"} <= names
        for m in doc["machines"]:
            assert m["default_P"] > 0
            assert isinstance(m["simd"], bool)

    def test_capabilities(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET", "/capabilities")
        assert status == 200
        assert "bsp" in doc["models"] and "e-bsp" in doc["models"]
        assert "bsf" in doc["models"]
        assert doc["algorithms"]["bitonic"]["default_size"] > 0
        assert doc["algorithms"]["radix"]["default_size"] > 0
        assert doc["engines"] == ["auto", "generator", "vector", "ir"]

    def test_experiments_index(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET", "/experiments")
        assert status == 200
        assert doc["experiments"], "registry must not be empty"
        assert all("id" in e and "title" in e for e in doc["experiments"])


class TestExperimentDetail:
    def test_unknown_id_is_404(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET",
                              "/experiments/fig99")
        assert status == 404
        assert "fig99" in doc["error"]

    def test_bad_scale_is_400(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET",
                              "/experiments/fig14?scale=2.0")
        assert status == 400
        assert "scale" in doc["error"]

    def test_run_then_cache_hit(self, service_thread):
        port = service_thread.port
        path = "/experiments/fig14?scale=0.25&seed=3"
        status, first, _ = http(port, "GET", path, timeout=300.0)
        assert status == 200
        assert first["id"] == "fig14"
        assert first["result"]
        status, second, _ = http(port, "GET", path, timeout=300.0)
        assert status == 200
        assert second["cached"] is True
        assert second["result"] == first["result"]


class TestPredict:
    def test_bit_identical_to_offline(self, service_thread):
        doc = {"machine": "gcel", "model": "bsp", "algorithm": "bitonic",
               "size": 64}
        status, served, _ = http(service_thread.port, "POST", "/predict",
                                 doc, timeout=300.0)
        assert status == 200
        assert served == json.loads(json.dumps(predict_offline(doc)))

    def test_concurrent_requests_stay_bit_identical(self, service_thread):
        """Concurrent distinct bodies force real batches through the
        collector; every response must still match the scalar path."""
        docs = [{"machine": "gcel", "model": m, "algorithm": a, "size": s}
                for m, a, s in [("bsp", "bitonic", 32),
                                ("mp-bsp", "bitonic", 32),
                                ("mp-bpram", "apsp", 16),
                                ("pram", "lu", 16),
                                ("loggp", "stencil", 16),
                                ("bsp", "lu", 16)]]
        with ThreadPoolExecutor(len(docs)) as pool:
            served = list(pool.map(
                lambda d: http(service_thread.port, "POST", "/predict", d,
                               timeout=300.0),
                docs))
        for doc, (status, body, _) in zip(docs, served):
            assert status == 200, body
            assert body == json.loads(json.dumps(predict_offline(doc))), doc

    def test_new_scenario_axes_bit_identical_to_offline(self,
                                                        service_thread):
        """All three new axes through one request: the radix workload on
        the modern profile priced by BSF must serve the offline bytes."""
        doc = {"machine": "modern", "model": "bsf", "algorithm": "radix",
               "size": 128}
        status, served, _ = http(service_thread.port, "POST", "/predict",
                                 doc, timeout=300.0)
        assert status == 200
        assert served == json.loads(json.dumps(predict_offline(doc)))

    def test_bad_json_is_400(self, service_thread):
        req = urllib.request.Request(
            f"http://127.0.0.1:{service_thread.port}/predict",
            method="POST", data=b"{not json")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=30)
        assert exc_info.value.code == 400

    @pytest.mark.parametrize("doc,fragment", [
        ({"machine": "vax", "algorithm": "bitonic"}, "unknown machine"),
        ({"machine": "gcel", "model": "e-bsp", "algorithm": "bitonic",
          "size": 32}, "e-bsp"),
        ({"machine": "gcel", "model": "bsp", "algorithm": "apsp",
          "size": 33}, "cannot run"),
    ])
    def test_unservable_requests_are_422(self, service_thread, doc,
                                         fragment):
        status, body, _ = http(service_thread.port, "POST", "/predict",
                               doc, timeout=300.0)
        assert status == 422
        assert fragment in body["error"]


class TestCompare:
    def test_matches_offline_ranking(self, service_thread):
        doc = {"machine": "gcel", "algorithm": "apsp", "size": 32}
        status, served, _ = http(service_thread.port, "POST", "/compare",
                                 doc, timeout=300.0)
        assert status == 200
        assert served == json.loads(json.dumps(compare_offline(doc)))
        errors = [abs(c["error"]) for c in served["ranking"]]
        assert errors == sorted(errors)

    def test_radix_on_modern_includes_bsf(self, service_thread):
        doc = {"machine": "modern", "algorithm": "radix", "size": 128}
        status, served, _ = http(service_thread.port, "POST", "/compare",
                                 doc, timeout=300.0)
        assert status == 200
        assert served == json.loads(json.dumps(compare_offline(doc)))
        assert "bsf" in [c["model"] for c in served["ranking"]]


class TestProtocol:
    def test_unknown_path_is_404(self, service_thread):
        status, _, _ = http(service_thread.port, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, service_thread):
        status, _, _ = http(service_thread.port, "POST", "/healthz", {})
        assert status == 405

    def test_metrics_exposition(self, service_thread):
        # at least one request has hit the server by now
        http(service_thread.port, "GET", "/healthz")
        status, text, ctype = http(service_thread.port, "GET", "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        for name in ("repro_requests_total", "repro_request_duration_seconds",
                     "repro_batch_size", "repro_lru_hit_ratio",
                     "repro_service_info"):
            assert name in text, name
        assert 'endpoint="/healthz"' in text
        # path parameters must not explode label cardinality
        http(service_thread.port, "GET", "/experiments/fig99")
        _, text, _ = http(service_thread.port, "GET", "/metrics")
        assert 'endpoint="/experiments/{id}"' in text
        assert "fig99" not in text


class TestLifecycle:
    def test_start_serve_stop(self, tmp_path):
        config = ServiceConfig(port=0, workers=1, warm=False,
                               cache_dir=str(tmp_path / "cache"))
        thread = ServiceThread(config).start()
        port = thread.port
        status, doc, _ = http(port, "GET", "/healthz")
        assert status == 200 and doc["status"] == "ok"
        thread.stop()
        assert not thread._thread.is_alive()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=5)

    def test_stop_is_idempotent(self, tmp_path):
        config = ServiceConfig(port=0, workers=1, warm=False,
                               cache_dir=str(tmp_path / "cache"))
        with ServiceThread(config) as thread:
            pass
        thread.stop()  # second stop must be harmless
