"""Loadtest harness tests: mix parsing, a short live run, records."""

import asyncio
import json

import pytest

from repro.service.loadtest import (LoadtestReport, append_service_record,
                                    parse_mix, render_report, run_loadtest)


class TestParseMix:
    @pytest.mark.parametrize("spec,expected", [
        ("8:1:1", (8, 1, 1)),
        ("1:0:0", (1, 0, 0)),
        ("0:0:5", (0, 0, 5)),
    ])
    def test_valid(self, spec, expected):
        assert parse_mix(spec) == expected

    @pytest.mark.parametrize("spec", [
        "8:1", "8:1:1:1", "a:b:c", "-1:1:1", "0:0:0", "", "8,1,1",
    ])
    def test_invalid(self, spec):
        with pytest.raises(ValueError, match="bad mix"):
            parse_mix(spec)


class TestReport:
    def _report(self):
        r = LoadtestReport(concurrency=2, duration_s=1.0, mix=(1, 1, 0))
        r.latencies = {"predict": [0.001, 0.002, 0.010],
                       "compare": [0.004]}
        r.mean_batch = 2.5
        r.batch_count = 2
        r.lru_hit_ratio = 0.75
        return r

    def test_totals_and_percentiles(self):
        r = self._report()
        assert r.total == 4
        assert r.rps == 4.0
        assert r.percentile_ms(0.0) == 1.0
        assert r.percentile_ms(0.99) == 10.0
        assert r.percentile_ms(0.99, kind="compare") == 4.0
        assert r.percentile_ms(0.5, kind="missing") == 0.0

    def test_empty_report_is_all_zero(self):
        r = LoadtestReport(concurrency=1, duration_s=0.0, mix=(1, 0, 0))
        assert r.total == 0 and r.rps == 0.0
        assert r.percentile_ms(0.95) == 0.0

    def test_record_shape(self):
        rec = self._report().to_record("my label")
        assert rec["kind"] == "service"
        assert rec["label"] == "my label"
        assert rec["requests"] == 4
        assert rec["mix"] == "1:1:0"
        assert rec["mean_batch"] == 2.5

    def test_render_report(self):
        text = render_report(self._report())
        assert "throughput" in text and "4 requests" in text
        assert "LRU hit ratio | 75.0%" in text
        assert "predict p95 (3 reqs)" in text


class TestAppendServiceRecord:
    def test_creates_and_appends(self, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        report = LoadtestReport(concurrency=1, duration_s=1.0, mix=(1, 0, 0))
        report.latencies = {"predict": [0.001]}
        append_service_record(report, out, label="first")
        append_service_record(report, out, label="second")
        doc = json.loads(out.read_text())
        assert [r["label"] for r in doc["runs"]] == ["first", "second"]
        assert all(r["kind"] == "service" for r in doc["runs"])

    def test_preserves_existing_bench_runs(self, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        out.write_text(json.dumps({"runs": [{"label": "bench run"}]}))
        report = LoadtestReport(concurrency=1, duration_s=1.0, mix=(1, 0, 0))
        append_service_record(report, out)
        doc = json.loads(out.read_text())
        assert doc["runs"][0] == {"label": "bench run"}
        assert doc["runs"][1]["kind"] == "service"

    def test_recovers_from_corrupt_file(self, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        out.write_text("{corrupt")
        report = LoadtestReport(concurrency=1, duration_s=1.0, mix=(1, 0, 0))
        append_service_record(report, out)
        doc = json.loads(out.read_text())
        assert len(doc["runs"]) == 1


class TestLiveRun:
    def test_short_run_against_service(self, service_thread):
        report = asyncio.run(run_loadtest(
            "127.0.0.1", service_thread.port, concurrency=4,
            duration_s=1.5, mix=(8, 1, 0), seed=0))
        assert report.errors == 0, report.error_detail
        assert report.total > 0
        assert report.percentile_ms(0.95) > 0
        # the server-side scrape came back populated
        assert report.batch_count > 0
        assert report.mean_batch >= 1.0
        assert 0.0 <= report.lru_hit_ratio <= 1.0
        text = render_report(report)
        assert "batch-size distribution" in text

    def test_refuses_when_no_server(self):
        with pytest.raises(OSError):
            asyncio.run(run_loadtest("127.0.0.1", 1, concurrency=1,
                                     duration_s=0.1))


class TestTopologyStamp:
    def test_record_carries_process_topology(self):
        report = LoadtestReport(concurrency=4, duration_s=1.0,
                                mix=(1, 0, 0))
        report.processes = 3
        report.server_workers = 2
        record = report.to_record("stamped")
        assert record["processes"] == 3
        assert record["workers"] == 2
        assert record["cpus"] is not None

    def test_live_probe_stamps_single_process_topology(self, service_thread):
        report = asyncio.run(run_loadtest(
            "127.0.0.1", service_thread.port, concurrency=2,
            duration_s=0.5, mix=(1, 0, 0), seed=0))
        assert report.processes == 1
        assert report.server_workers == 2
        assert f"against 1 server process(es)" in render_report(report)
