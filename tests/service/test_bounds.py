"""``POST /bounds``: served == offline bytes, LRU dedup, validation.

Acceptance oracle: a served optimality report must be byte-identical
to :func:`repro.service.oracle.bounds_offline` — dispatcher, LRU and
the service's result cache may not change a single byte.
"""

import json
import re

import pytest

from repro.service.oracle import bounds_offline

from .conftest import http

#: one cheap cell so the in-worker measurement stays sub-second.
DOC = {"cells": ["apsp/gcel"], "scale": 0.3, "seed": 0}


def offline(doc):
    # round-trip like the HTTP layer does, so comparisons are byte-level
    return json.loads(json.dumps(bounds_offline(doc)))


def lru_hits(port) -> int:
    _, text, _ = http(port, "GET", "/metrics")
    m = re.search(r'repro_lru_hits_total\{kind="bounds"\} (\d+)', text)
    return int(m.group(1)) if m else 0


class TestServedBytes:
    def test_served_equals_offline(self, service_thread):
        status, body, _ = http(service_thread.port, "POST", "/bounds", DOC)
        assert status == 200
        assert body == offline(DOC)
        assert body["schema"] == "repro-bounds/1"
        assert body["ranking"][0]["ratio"] >= 1.0

    def test_repeat_request_is_an_lru_hit_with_same_bytes(self,
                                                          service_thread):
        port = service_thread.port
        doc = dict(DOC, seed=1)
        before = lru_hits(port)
        _, first, _ = http(port, "POST", "/bounds", doc)
        assert lru_hits(port) == before
        _, second, _ = http(port, "POST", "/bounds", doc)
        assert second == first
        assert lru_hits(port) == before + 1

    def test_cell_order_shares_one_lru_entry(self, service_thread):
        """The cell selection is canonicalised into the LRU key, so
        permuted selections dedupe onto the same cached report."""
        port = service_thread.port
        doc = {"cells": ["apsp/gcel", "bitonic/maspar"], "scale": 0.3,
               "seed": 2}
        flipped = {"cells": ["bitonic/maspar", "apsp/gcel"], "scale": 0.3,
                   "seed": 2}
        before = lru_hits(port)
        _, first, _ = http(port, "POST", "/bounds", doc)
        _, second, _ = http(port, "POST", "/bounds", flipped)
        assert second == first
        assert lru_hits(port) == before + 1


class TestValidation:
    @pytest.mark.parametrize("doc,fragment", [
        ({"cells": ["bogus"]}, "unknown bound cell"),
        ({"cells": []}, "non-empty list"),
        ({"scale": 1.5}, "scale"),
        ({"seed": -1}, "seed"),
        ({"threshold": 0}, "threshold"),
        ([], "JSON object"),
    ])
    def test_bad_request_answers_422(self, service_thread, doc, fragment):
        status, body, _ = http(service_thread.port, "POST", "/bounds", doc)
        assert status == 422
        assert fragment in body["error"]

    def test_capabilities_advertise_the_matrix(self, service_thread):
        status, doc, _ = http(service_thread.port, "GET", "/capabilities")
        assert status == 200
        bnd = doc["bounds"]
        assert "apsp/gcel" in bnd["cells"]
        assert "bitonic/maspar" in bnd["cells"]
        assert "radix/gcel" in bnd["cells"]
        assert "radix/modern" in bnd["cells"]
        assert bnd["default_threshold"] == 8.0


class TestRadixCells:
    def test_radix_cell_served_equals_offline(self, service_thread):
        doc = {"cells": ["radix/gcel"], "scale": 0.3, "seed": 0}
        status, body, _ = http(service_thread.port, "POST", "/bounds", doc,
                               timeout=300.0)
        assert status == 200
        assert body == offline(doc)
        row = body["ranking"][0]
        assert row["cell"] == "radix/gcel"
        assert row["family"] == "counting"
        assert row["ratio"] >= 1.0  # sound: measured >= bound
