"""Shared fixtures for the service test suite.

One server on a daemon thread serves every HTTP-level test in this
directory: boot cost (calibration warm-up) is paid once, and the tests
exercise the same keep-alive/batching path production traffic takes.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceConfig, ServiceThread


@pytest.fixture(scope="session")
def service_thread(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    config = ServiceConfig(port=0, workers=2, window_ms=1.0,
                           cache_dir=str(cache_dir), warm=False)
    with ServiceThread(config) as thread:
        yield thread


def http(port, method, path, body=None, timeout=60.0):
    """One request; returns ``(status, parsed-or-raw body, content_type)``."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            status, raw = resp.status, resp.read()
            ctype = resp.headers.get("Content-Type", "")
    except urllib.error.HTTPError as exc:
        status, raw = exc.code, exc.read()
        ctype = exc.headers.get("Content-Type", "")
    if ctype.startswith("application/json"):
        return status, json.loads(raw), ctype
    return status, raw.decode(), ctype
