"""Prometheus text-format rendering and parsing."""

from repro.service.metrics import (Counter, Gauge, Histogram,
                                   MetricsRegistry, ServiceMetrics,
                                   parse_histogram)


class TestCounter:
    def test_labelled_increments(self):
        c = Counter("x_total", "help text", ("endpoint", "status"))
        c.inc(endpoint="/predict", status="200")
        c.inc(2, endpoint="/predict", status="200")
        c.inc(endpoint="/compare", status="422")
        assert c.value(endpoint="/predict", status="200") == 3
        assert c.total() == 4
        text = "\n".join(c.render())
        assert "# TYPE x_total counter" in text
        assert 'x_total{endpoint="/predict",status="200"} 3' in text

    def test_unlabelled_renders_zero_by_default(self):
        assert "x_total 0" in "\n".join(Counter("x_total", "h").render())

    def test_label_escaping(self):
        c = Counter("x_total", "h", ("msg",))
        c.inc(msg='bad "quote"\nnewline')
        text = "\n".join(c.render())
        assert '\\"quote\\"' in text and "\\n" in text


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("inflight", "h")
        g.inc()
        g.inc()
        g.dec()
        assert g.value() == 1
        assert "inflight 1" in "\n".join(g.render())

    def test_callback_gauge(self):
        g = Gauge("ratio", "h")
        g.callback = lambda: 0.5
        assert "ratio 0.5" in "\n".join(g.render())


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("lat", "h", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        text = "\n".join(h.render())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert h.count() == 4
        assert h.mean() == (0.05 + 0.5 + 5.0 + 50.0) / 4

    def test_labelled_series(self):
        h = Histogram("lat", "h", (1.0,), ("endpoint",))
        h.observe(0.5, endpoint="/predict")
        h.observe(2.0, endpoint="/predict")
        text = "\n".join(h.render())
        assert 'lat_bucket{endpoint="/predict",le="1"} 1' in text
        assert 'lat_count{endpoint="/predict"} 2' in text
        assert h.count(endpoint="/predict") == 2

    def test_roundtrip_through_parser(self):
        h = Histogram("repro_batch_size", "h", (1.0, 2.0, 4.0))
        for v in (1, 1, 3, 9):
            h.observe(v)
        buckets, total, count = parse_histogram(
            "\n".join(h.render()), "repro_batch_size")
        assert buckets == {"1": 2, "2": 2, "4": 3, "+Inf": 4}
        assert total == 14
        assert count == 4


class TestServiceMetrics:
    def test_render_contains_catalogue(self):
        m = ServiceMetrics(version="9.9.9")
        m.requests.inc(endpoint="/predict", status="200")
        m.latency.observe(0.004, endpoint="/predict")
        m.batch_size.observe(3)
        m.lru_hits.inc(kind="predict")
        m.lru_misses.inc(kind="predict")
        text = m.render()
        for name in ("repro_requests_total", "repro_request_duration_seconds",
                     "repro_batch_size", "repro_lru_hits_total",
                     "repro_lru_hit_ratio", "repro_inflight_requests",
                     "repro_service_info"):
            assert name in text, name
        assert 'version="9.9.9"' in text
        assert "repro_lru_hit_ratio 0.5" in text

    def test_hit_ratio_zero_when_idle(self):
        assert ServiceMetrics().hit_ratio() == 0.0


class TestRegistry:
    def test_render_joins_all_metrics(self):
        r = MetricsRegistry()
        r.register(Counter("a_total", "ha"))
        r.register(Gauge("b", "hb"))
        text = r.render()
        assert text.index("a_total") < text.index("# HELP b hb")
        assert text.endswith("\n")


class TestFleetAggregation:
    """snapshot() / merge_snapshots() / render_snapshot() — the
    fleet-wide /metrics pipeline."""

    @staticmethod
    def _worker_metrics(hits=1, misses=1):
        m = ServiceMetrics(version="9.9.9")
        m.requests.inc(endpoint="/predict", status="200")
        m.latency.observe(0.002, endpoint="/predict")
        m.batch_size.observe(3)
        m.batches.inc()
        for _ in range(hits):
            m.lru_hits.inc(kind="predict")
        for _ in range(misses):
            m.lru_misses.inc(kind="predict")
        m.inflight.set(2)
        m.arena_ops.set(5, op="hit")
        return m

    def test_single_snapshot_renders_byte_identical(self):
        from repro.service.metrics import merge_snapshots, render_snapshot

        m = self._worker_metrics()
        assert render_snapshot(m.snapshot()) == m.render()
        # and merging a fleet of one changes nothing either
        assert render_snapshot(merge_snapshots([m.snapshot()])) == m.render()

    def test_merge_sums_counters_and_histograms(self):
        from repro.service.metrics import merge_snapshots, render_snapshot

        a = self._worker_metrics()
        b = self._worker_metrics()
        text = render_snapshot(merge_snapshots([a.snapshot(), b.snapshot()]))
        assert 'repro_requests_total{endpoint="/predict",status="200"} 2' \
            in text
        assert "repro_batches_total 2" in text
        assert "repro_batch_size_count 2" in text
        assert 'repro_arena_ops_total{op="hit"} 10' in text
        # plain gauges sum (2 in-flight on each worker = 4 fleet-wide)
        assert "repro_inflight_requests 4" in text

    def test_info_gauge_merges_by_max(self):
        from repro.service.metrics import merge_snapshots, render_snapshot

        a = self._worker_metrics()
        b = self._worker_metrics()
        text = render_snapshot(merge_snapshots([a.snapshot(), b.snapshot()]))
        assert 'repro_service_info{version="9.9.9"} 1' in text

    def test_hit_ratio_recomputed_from_merged_totals(self):
        from repro.service.metrics import merge_snapshots

        a = self._worker_metrics(hits=3, misses=1)   # 0.75 locally
        b = self._worker_metrics(hits=0, misses=4)   # 0.0 locally
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        ratio = next(m for m in merged
                     if m["name"] == "repro_lru_hit_ratio")
        # 3 hits / 8 lookups — not the 0.375 average of the two ratios
        assert ratio["values"] == [[[], 3 / 8]]

    def test_callback_gauge_snapshot_captures_value(self):
        m = self._worker_metrics(hits=1, misses=0)
        snap = next(s for s in m.snapshot()
                    if s["name"] == "repro_lru_hit_ratio")
        assert snap["values"] == [[[], 1.0]]

    def test_merge_keeps_first_appearance_order(self):
        from repro.service.metrics import merge_snapshots

        a = self._worker_metrics()
        b = self._worker_metrics()
        names_a = [m["name"] for m in a.snapshot()]
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert [m["name"] for m in merged] == names_a

    def test_supervisor_style_snapshot_merges_in(self):
        """The fleet supervisor publishes hand-built snapshot docs for
        its own gauges/counters; they merge like any worker's."""
        from repro.service.metrics import merge_snapshots, render_snapshot

        sup = [{"name": "repro_fleet_workers", "kind": "gauge",
                "help": "Live fleet workers.", "labels": [],
                "values": [[[], 2]]}]
        m = self._worker_metrics()
        text = render_snapshot(merge_snapshots([m.snapshot(), sup]))
        assert "repro_fleet_workers 2" in text
        assert "# TYPE repro_fleet_workers gauge" in text
