"""Tests for the Table 1 calibration pipeline."""

import pytest

from repro.calibration.table1 import calibrate, calibrate_all, render_table1
from repro.core.params import paper_params
from repro.machines import CM5, GCel, MasParMP1


@pytest.fixture(scope="module")
def cals():
    return calibrate_all(seed=3, trials=8)


class TestCalibrateAll:
    def test_three_machines(self, cals):
        assert set(cals) == {"maspar", "gcel", "cm5"}

    @pytest.mark.parametrize("machine,field,tol", [
        ("maspar", "g", 0.15), ("maspar", "L", 0.20),
        ("maspar", "sigma", 0.10), ("maspar", "ell", 0.25),
        ("gcel", "g", 0.05), ("gcel", "L", 0.10),
        ("gcel", "sigma", 0.10), ("gcel", "ell", 0.15),
        ("cm5", "g", 0.10), ("cm5", "L", 0.30),
        ("cm5", "sigma", 0.10), ("cm5", "ell", 0.25),
    ])
    def test_fitted_near_table1(self, cals, machine, field, tol):
        fitted = getattr(cals[machine].params, field)
        published = getattr(paper_params(machine), field)
        assert fitted == pytest.approx(published, rel=tol)

    def test_maspar_gets_unbalanced_law(self, cals):
        unb = cals["maspar"].unb
        assert unb is not None
        assert unb.a == pytest.approx(0.84, abs=0.15)
        assert cals["maspar"].unb_r2 > 0.999

    def test_gcel_gets_scatter_g(self, cals):
        gs = cals["gcel"].g_scatter
        assert gs is not None
        assert 5 < cals["gcel"].params.g / gs < 12

    def test_mimd_machines_skip_unbalanced(self, cals):
        assert cals["gcel"].unb is None
        assert cals["cm5"].unb is None

    def test_fit_quality_recorded(self, cals):
        for cal in cals.values():
            assert cal.notes["g_r2"] > 0.97
            assert cal.notes["block_r2"] > 0.99


class TestCalibrateSingle:
    def test_partition_calibration_differs(self):
        # A 512-PE MasPar partition has cheaper full permutations, so its
        # fitted L is lower — calibrating the configuration you run on
        # matters (this is why fig3 calibrates at P=1000).
        small = calibrate(MasParMP1(P=256, seed=1), seed=1, trials=6)
        big = calibrate(MasParMP1(P=1024, seed=1), seed=1, trials=6)
        assert small.params.L < big.params.L

    def test_deterministic_given_seed(self):
        a = calibrate(CM5(seed=5), seed=5, trials=4)
        b = calibrate(CM5(seed=5), seed=5, trials=4)
        assert a.params.g == b.params.g
        assert a.params.ell == b.params.ell


class TestRendering:
    def test_render_mentions_all(self, cals):
        text = render_table1(cals)
        assert "maspar" in text and "gcel" in text and "cm5" in text
        assert "(paper)" in text
        assert "4480" in text  # the published GCel g
