"""Tests for the least-squares fitting helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration.fitting import fit_line, fit_unbalanced, r_squared
from repro.calibration.microbench import TimingSeries
from repro.core.errors import CalibrationError


def series(xs, ys):
    return TimingSeries(name="t", xs=np.asarray(xs, float),
                        mean=np.asarray(ys, float))


class TestFitLine:
    def test_exact_line(self):
        fit = fit_line(series([1, 2, 3, 4], [12, 22, 32, 42]))
        assert fit.slope == pytest.approx(10)
        assert fit.intercept == pytest.approx(2)
        assert fit.r2 == pytest.approx(1.0)

    def test_noisy_line(self, rng):
        xs = np.arange(1, 50, dtype=float)
        ys = 3.5 * xs + 100 + rng.normal(0, 1, xs.size)
        fit = fit_line(series(xs, ys))
        assert fit.slope == pytest.approx(3.5, abs=0.1)
        assert fit.intercept == pytest.approx(100, abs=5)
        assert fit.r2 > 0.99

    def test_evaluation(self):
        fit = fit_line(series([0, 1], [1, 3]))
        assert fit(10) == pytest.approx(21)

    def test_too_few_points(self):
        with pytest.raises(CalibrationError):
            fit_line(series([1], [1]))

    def test_negative_slope_rejected(self):
        with pytest.raises(CalibrationError, match="negative slope"):
            fit_line(series([1, 2, 3], [30, 20, 10]))

    @given(st.floats(0.1, 1e3), st.floats(0, 1e4))
    @settings(max_examples=30, deadline=None)
    def test_recovers_any_line(self, slope, intercept):
        xs = np.array([1.0, 2.0, 5.0, 10.0, 20.0])
        fit = fit_line(series(xs, slope * xs + intercept))
        assert fit.slope == pytest.approx(slope, rel=1e-6, abs=1e-9)
        assert fit.intercept == pytest.approx(intercept, rel=1e-6, abs=1e-6)


class TestFitUnbalanced:
    def test_recovers_paper_law(self):
        xs = np.array([8, 16, 32, 64, 128, 256, 512, 1024], dtype=float)
        ys = 0.84 * xs + 11.8 * np.sqrt(xs) + 73.3
        unb, r2 = fit_unbalanced(series(xs, ys))
        assert unb.a == pytest.approx(0.84, abs=1e-6)
        assert unb.b == pytest.approx(11.8, abs=1e-5)
        assert unb.c == pytest.approx(73.3, abs=1e-4)
        assert r2 == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(CalibrationError):
            fit_unbalanced(series([1, 2], [1, 2]))

    def test_negative_linear_term_rejected(self):
        xs = np.array([1, 4, 16, 64, 256], dtype=float)
        ys = -2 * xs + 100 * np.sqrt(xs)
        with pytest.raises(CalibrationError):
            fit_unbalanced(series(xs, ys))


class TestRSquared:
    def test_perfect(self):
        ys = np.array([1.0, 2.0, 3.0])
        assert r_squared(ys, ys) == 1.0

    def test_mean_model_is_zero(self):
        ys = np.array([1.0, 2.0, 3.0])
        assert r_squared(ys, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_constant_data(self):
        ys = np.array([5.0, 5.0])
        assert r_squared(ys, ys) == 1.0
        assert r_squared(ys, ys + 1) == 0.0
