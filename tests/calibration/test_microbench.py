"""Tests for the microbenchmark drivers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration.microbench import (
    TimingSeries,
    full_h_relation_experiment,
    hh_permutation_experiment,
    multinode_scatter,
    one_h_relation,
    one_h_relation_experiment,
    random_h_relation,
    random_partial_permutation,
    random_permutation,
    time_phase,
)
from repro.core.errors import CalibrationError
from repro.machines import GCel, MasParMP1


class TestPatternGenerators:
    def test_random_permutation_no_fixed_points(self, rng):
        for _ in range(20):
            ph = random_permutation(64, rng)
            assert ph.total_messages == 64
            assert ph.is_partial_permutation
            assert not np.any(ph.src == ph.dst)

    def test_partial_permutation_counts(self, rng):
        ph = random_partial_permutation(64, 10, rng)
        assert ph.total_messages == 10
        assert ph.h_s <= 1 and ph.h_r <= 1

    def test_partial_permutation_bounds(self, rng):
        with pytest.raises(CalibrationError):
            random_partial_permutation(64, 0, rng)
        with pytest.raises(CalibrationError):
            random_partial_permutation(64, 65, rng)

    def test_h_relation_is_full(self, rng):
        ph = random_h_relation(64, 5, rng)
        rel = ph.relation()
        assert rel.is_full_h_relation(64)
        assert rel.h == 5

    def test_one_h_relation_shape(self, rng):
        ph = one_h_relation(1024, 8, rng)
        assert ph.h_s == 1
        assert ph.h_r == 8
        assert ph.total_messages == 1024

    def test_one_h_relation_uneven_tail(self, rng):
        # h that does not divide P: the last destination gets fewer
        ph = one_h_relation(1024, 3, rng)
        assert ph.total_messages == 1024
        assert ph.h_r == 3

    def test_multinode_scatter_balanced(self, rng):
        ph = multinode_scatter(64, 32, rng)
        assert ph.senders == 8
        assert ph.h_s == 32
        # receivers exclude the senders and are balanced
        assert ph.recvs_per_proc[:8].sum() == 0
        assert ph.h_r <= -(-8 * 32 // 56) + 1

    @given(st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_one_h_relation_any_h(self, h):
        rng = np.random.default_rng(h)
        ph = one_h_relation(1024, h, rng)
        assert ph.total_messages == 1024


class TestExperiments:
    def test_series_shape(self, rng):
        m = GCel(seed=0)
        s = full_h_relation_experiment(m, [1, 2, 4], trials=2, rng=rng)
        assert s.xs.tolist() == [1, 2, 4]
        assert np.all(s.lo <= s.mean) and np.all(s.mean <= s.hi)

    def test_one_h_series_increasing(self, rng):
        m = MasParMP1(seed=0)
        s = one_h_relation_experiment(m, [1, 8, 32], trials=5, rng=rng)
        assert s.mean[0] < s.mean[1] < s.mean[2]

    def test_hh_sync_variant_includes_barriers(self, rng):
        plain = hh_permutation_experiment(GCel(seed=1), [100], rng=rng,
                                          sync_every=None, trials=2)
        rng2 = np.random.default_rng(1)
        synced = hh_permutation_experiment(GCel(seed=1), [100], rng=rng2,
                                           sync_every=10, trials=2)
        # below the drift window, barriers only add overhead (10 barriers
        # = 51 ms, far above the per-run timing jitter)
        assert synced.mean[0] > plain.mean[0] + 5 * 5100

    def test_time_phase_positive(self, rng):
        m = GCel(seed=0)
        assert time_phase(m, random_permutation(64, rng)) > 0

    def test_timing_series_validation(self):
        with pytest.raises(CalibrationError):
            TimingSeries(name="x", xs=np.array([1.0, 2.0]),
                         mean=np.array([1.0]))
