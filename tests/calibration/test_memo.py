"""Tests for the shared calibration-fit memoisation."""

import pytest

from repro.calibration import (
    calibrate_all,
    calibration_for,
    calibration_memo_stats,
    clear_calibration_memo,
)
from repro.experiments.common import calibrated, machine_for


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_calibration_memo()
    yield
    clear_calibration_memo()


class TestCalibrationFor:
    def test_second_call_is_a_hit(self):
        a = calibration_for("gcel", seed=3, trials=4)
        b = calibration_for("gcel", seed=3, trials=4)
        assert a is b
        stats = calibration_memo_stats()
        assert stats == {"hits": 1, "misses": 1}

    def test_key_includes_all_seeds_and_trials(self):
        calibration_for("gcel", seed=3, trials=4)
        calibration_for("gcel", seed=4, trials=4)          # cal seed
        calibration_for("gcel", machine_seed=1, seed=3, trials=4)
        calibration_for("gcel", seed=3, trials=5)          # trials
        calibration_for("cm5", seed=3, trials=4)           # machine
        assert calibration_memo_stats()["misses"] == 5

    def test_matches_unmemoised_calibration(self):
        from repro.calibration import calibrate
        from repro.machines import make_machine

        memo = calibration_for("cm5", machine_seed=2, seed=5, trials=4)
        direct = calibrate(make_machine("cm5", seed=2), seed=5, trials=4)
        assert memo.params == direct.params
        assert memo.g_fit == direct.g_fit
        assert memo.block_fit == direct.block_fit

    def test_clear_resets(self):
        calibration_for("gcel", seed=3, trials=4)
        clear_calibration_memo()
        assert calibration_memo_stats() == {"hits": 0, "misses": 0}
        calibration_for("gcel", seed=3, trials=4)
        assert calibration_memo_stats()["misses"] == 1


class TestSharedAcrossCallSites:
    def test_calibrate_all_computes_each_machine_once(self):
        calibrate_all(seed=0, trials=6)
        calibrate_all(seed=0, trials=6)
        stats = calibration_memo_stats()
        assert stats["misses"] == 3 and stats["hits"] == 3

    def test_figures_share_one_fit_per_machine(self):
        machine = machine_for("gcel", seed=0)
        a = calibrated(machine, seed=0)
        b = calibrated(machine_for("gcel", seed=0), seed=0)
        assert a is b
        assert calibration_memo_stats() == {"hits": 1, "misses": 1}

    def test_different_partitions_not_aliased(self):
        a = calibrated(machine_for("maspar", seed=0), seed=0)
        b = calibrated(machine_for("maspar", P=64, seed=0), seed=0)
        assert a is not b
        assert a.params.P == 1024 and b.params.P == 64
