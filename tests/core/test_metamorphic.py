"""Metamorphic properties of the cost models (hypothesis, derandomized).

Rather than asserting absolute costs, these tests pin *relations between
runs* — the invariants a cost model must satisfy for the paper's
comparisons to mean anything:

* monotonicity: more communication (larger h) never gets cheaper, and
  raising any machine parameter never lowers a prediction;
* scaling laws: doubling ``g`` doubles exactly the bandwidth term,
  doubling ``L`` adds exactly one latency, and MP-BPRAM cost decomposes
  exactly into its ``n_steps * ell`` and ``sigma * bytes`` terms;
* permutation invariance: the order in which a phase's message groups
  (or a batch's phases) are listed is bookkeeping, not physics — costs
  must be bit-identical under reordering.

All draws are derandomized: the examples are a pure function of the test
source, so a failure reproduces from its printed example alone.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bpram import MPBPRAM
from repro.core.bsf import BSF
from repro.core.bsp import BSP
from repro.core.ebsp import EBSP
from repro.core.params import (
    PAPER_UNBALANCED,
    UnbalancedCost,
    paper_params,
)
from repro.core.relations import CommPhase

PARAMS = paper_params("maspar")
UNB = PAPER_UNBALANCED["maspar"]

SETTINGS = settings(derandomize=True, max_examples=30, deadline=None)

#: (P, groups) — each group is (src, dst, count, msg_bytes); sizes are
#: kept >= 1 so every drawn phase actually communicates.
send_sets = st.integers(min_value=2, max_value=32).flatmap(
    lambda P: st.tuples(
        st.just(P),
        st.lists(
            st.tuples(st.integers(0, P - 1), st.integers(0, P - 1),
                      st.integers(1, 6), st.integers(1, 64)),
            min_size=1, max_size=24)))


def phase_of(P, groups, k=1) -> CommPhase:
    """Build a phase, with every group count scaled by ``k``."""
    src, dst, count, nbytes = (np.array(col, dtype=np.int64)
                               for col in zip(*groups))
    return CommPhase(P=P, src=src, dst=dst, count=count * k,
                     msg_bytes=nbytes)


def models(params=PARAMS):
    return [BSP(params), EBSP(params, UNB), MPBPRAM(params), BSF(params)]


class TestMonotonicity:
    @given(send_sets)
    @SETTINGS
    def test_doubling_message_counts_never_cheaper(self, case):
        """h-monotonicity: the same pattern at twice the multiplicity
        costs at least as much under every model."""
        P, groups = case
        base, doubled = phase_of(P, groups), phase_of(P, groups, k=2)
        for model in models():
            assert model.comm_cost(doubled) >= model.comm_cost(base), \
                model.name

    @given(send_sets)
    @SETTINGS
    def test_adding_messages_never_cheaper(self, case):
        """Superset-monotonicity for the max-based models."""
        P, groups = case
        whole = phase_of(P, groups)
        prefix = phase_of(P, groups[: max(1, len(groups) // 2)])
        for model in (BSP(PARAMS), MPBPRAM(PARAMS)):
            assert model.comm_cost(whole) >= model.comm_cost(prefix), \
                model.name

    @given(send_sets)
    @SETTINGS
    def test_raising_any_parameter_never_cheaper(self, case):
        """Predictions are monotone in g, L, sigma and ell."""
        phase = phase_of(*case)
        worse = PARAMS.with_updates(g=PARAMS.g * 2, L=PARAMS.L * 2,
                                    sigma=PARAMS.sigma * 2,
                                    ell=PARAMS.ell * 2)
        for cheap, dear in zip(models(PARAMS), models(worse)):
            assert dear.comm_cost(phase) >= cheap.comm_cost(phase), \
                cheap.name

    @given(st.integers(0, 4096), st.integers(0, 4096))
    @SETTINGS
    def test_unbalanced_law_monotone_in_active_processors(self, a, b):
        """E-BSP's T_unb(P'): more active processors never cost less —
        the whole premise of charging partial permutations less."""
        lo, hi = sorted((a, b))
        assert UNB(hi) >= UNB(lo)
        assert UNB(0) == 0.0


class TestScalingLaws:
    @given(send_sets)
    @SETTINGS
    def test_bsp_doubling_g_doubles_the_bandwidth_term(self, case):
        """cost(2g) - L == 2 * (cost(g) - L): only the g h term scales."""
        phase = phase_of(*case)
        cost = BSP(PARAMS).comm_cost(phase)
        cost2g = BSP(PARAMS.with_updates(g=PARAMS.g * 2)).comm_cost(phase)
        assert math.isclose(cost2g - PARAMS.L, 2 * (cost - PARAMS.L),
                            rel_tol=1e-12)

    @given(send_sets)
    @SETTINGS
    def test_bsp_doubling_l_adds_exactly_one_latency(self, case):
        phase = phase_of(*case)
        cost = BSP(PARAMS).comm_cost(phase)
        cost2l = BSP(PARAMS.with_updates(L=PARAMS.L * 2)).comm_cost(phase)
        assert math.isclose(cost2l, cost + PARAMS.L, rel_tol=1e-12)

    @given(send_sets)
    @SETTINGS
    def test_bpram_cost_decomposes_into_its_two_terms(self, case):
        """cost == n_steps * ell + sigma * max bytes, recovered from
        runs with one term zeroed — the model has no cross terms."""
        phase = phase_of(*case)
        full = MPBPRAM(PARAMS).comm_cost(phase)
        only_ell = MPBPRAM(PARAMS.with_updates(sigma=0.0)).comm_cost(phase)
        only_sigma = MPBPRAM(PARAMS.with_updates(ell=0.0)).comm_cost(phase)
        assert math.isclose(full, only_ell + only_sigma, rel_tol=1e-12)
        # and the startup term counts whole steps of the ell charge
        n_steps = only_ell / PARAMS.ell
        assert n_steps == int(n_steps) >= 1

    @given(send_sets)
    @SETTINGS
    def test_bpram_is_homogeneous_in_message_multiplicity(self, case):
        """k-fold multiplicity costs exactly k-fold (k a power of two):
        block transfers have no economy of scale across messages."""
        P, groups = case
        base = MPBPRAM(PARAMS).comm_cost(phase_of(P, groups))
        quad = MPBPRAM(PARAMS).comm_cost(phase_of(P, groups, k=4))
        assert math.isclose(quad, 4 * base, rel_tol=1e-12)

    @given(st.integers(1, 2048))
    @SETTINGS
    def test_unbalanced_law_matches_its_closed_form(self, active):
        law = UnbalancedCost(a=0.84, b=11.8, c=73.3)
        assert law(active) == 0.84 * active + 11.8 * math.sqrt(active) \
            + 73.3


class TestBSFLaws:
    """The master-worker model's own metamorphic signature."""

    @given(send_sets)
    @SETTINGS
    def test_doubling_g_doubles_everything_but_latency(self, case):
        """o_master defaults to g, so the whole relay term scales with
        g: cost(2g) - L == 2 * (cost(g) - L)."""
        phase = phase_of(*case)
        cost = BSF(PARAMS).comm_cost(phase)
        cost2g = BSF(PARAMS.with_updates(g=PARAMS.g * 2)).comm_cost(phase)
        assert math.isclose(cost2g - PARAMS.L, 2 * (cost - PARAMS.L),
                            rel_tol=1e-12)

    @given(send_sets)
    @SETTINGS
    def test_relay_is_homogeneous_in_multiplicity(self, case):
        """k-fold multiplicity scales both words and message handling
        k-fold: the master has no economy of scale."""
        P, groups = case
        base = BSF(PARAMS).comm_cost(phase_of(P, groups))
        quad = BSF(PARAMS).comm_cost(phase_of(P, groups, k=4))
        assert math.isclose(quad - PARAMS.L, 4 * (base - PARAMS.L),
                            rel_tol=1e-12)

    @given(send_sets)
    @SETTINGS
    def test_pattern_blindness(self, case):
        """BSF's defining property: every transfer crosses the star
        through the master, so rewriting all destinations to one hot
        receiver changes nothing — unlike every direct-network model."""
        P, groups = case
        incast = [(s, 0, c, b) for s, d, c, b in groups]
        assert BSF(PARAMS).comm_cost(phase_of(P, groups)) \
            == BSF(PARAMS).comm_cost(phase_of(P, incast))

    @given(send_sets)
    @SETTINGS
    def test_separate_o_master_decomposes(self, case):
        """cost - L splits exactly into the word term (o_master=0) and
        the handling term (the o_master share alone)."""
        phase = phase_of(*case)
        full = BSF(PARAMS).comm_cost(phase)
        words_only = BSF(PARAMS, o_master=0.0).comm_cost(phase)
        handling = 2.0 * PARAMS.g * float(phase.count.sum())
        assert math.isclose(full - PARAMS.L,
                            (words_only - PARAMS.L) + handling,
                            rel_tol=1e-12)


class TestPermutationInvariance:
    @given(send_sets, st.randoms(use_true_random=False))
    @SETTINGS
    def test_group_order_is_bookkeeping(self, case, rnd):
        """Shuffling the message groups changes nothing, bit for bit."""
        P, groups = case
        shuffled = list(groups)
        rnd.shuffle(shuffled)
        for model in models():
            assert model.comm_cost(phase_of(P, groups)) \
                == model.comm_cost(phase_of(P, shuffled)), model.name

    @given(st.lists(send_sets, min_size=1, max_size=6))
    @SETTINGS
    def test_batch_pricing_is_order_invariant(self, cases):
        """comm_cost_batch prices each phase independently of its
        neighbours and of its position."""
        # batch pricers require a uniform P: rebuild all on the largest
        P = max(c[0] for c in cases)
        phases = [phase_of(P, groups) for _, groups in cases]
        for model in models():
            forward = model.comm_cost_batch(phases)
            backward = model.comm_cost_batch(phases[::-1])
            assert forward == backward[::-1], model.name
            assert forward == [model.comm_cost(ph) for ph in phases], \
                model.name


@pytest.mark.parametrize("machine", ["maspar", "gcel", "cm5"])
class TestCrossMachine:
    @given(case=send_sets)
    @SETTINGS
    def test_invariants_hold_for_every_table1_machine(self, machine, case):
        """The relations above are model properties, not artifacts of
        one parameter set."""
        params = paper_params(machine)
        phase = phase_of(*case)
        doubled = phase_of(case[0], case[1], k=2)
        for model in (BSP(params), MPBPRAM(params)):
            assert model.comm_cost(doubled) >= model.comm_cost(phase)
        cost = BSP(params).comm_cost(phase)
        cost2g = BSP(params.with_updates(g=params.g * 2)).comm_cost(phase)
        assert math.isclose(cost2g - params.L, 2 * (cost - params.L),
                            rel_tol=1e-12)
