"""Tests for execution traces."""

import numpy as np
import pytest

from repro.core.errors import TraceError
from repro.core.params import paper_params
from repro.core.relations import CommPhase
from repro.core.trace import Superstep, Trace
from repro.core.work import Flops, Generic

CM5 = paper_params("cm5")


def simple_step(P=8, measured=float("nan")):
    ph = CommPhase.permutation(np.roll(np.arange(P), 1), 8)
    return Superstep(phase=ph, measured_us=measured)


class TestSuperstep:
    def test_add_work_and_nominal(self):
        s = simple_step()
        s.add_work(0, Flops(100))
        s.add_work(0, Generic(5.0))
        s.add_work(3, Flops(50))
        arr = s.work_nominal_us(CM5)
        assert arr.shape == (8,)
        assert arr[0] == pytest.approx(100 * CM5.alpha + 5.0)
        assert arr[3] == pytest.approx(50 * CM5.alpha)
        assert s.max_work_nominal_us(CM5) == pytest.approx(arr.max())

    def test_no_work_is_zero(self):
        assert simple_step().max_work_nominal_us(CM5) == 0.0

    def test_bad_proc_rejected(self):
        with pytest.raises(TraceError):
            simple_step().add_work(8, Flops(1))


class TestTrace:
    def test_append_and_iterate(self):
        tr = Trace(P=8)
        tr.append(simple_step())
        tr.append(simple_step())
        assert len(tr) == 2
        assert list(tr) == tr.supersteps
        assert tr[0] is tr.supersteps[0]

    def test_p_mismatch_rejected(self):
        tr = Trace(P=8)
        with pytest.raises(TraceError):
            tr.append(simple_step(P=16))

    def test_measured_requires_simulation(self):
        tr = Trace(P=8)
        tr.append(simple_step())
        with pytest.raises(TraceError, match="never simulated"):
            _ = tr.measured_us

    def test_measured_sums(self):
        tr = Trace(P=8)
        tr.append(simple_step(measured=10.0))
        tr.append(simple_step(measured=2.5))
        assert tr.measured_us == pytest.approx(12.5)

    def test_totals(self):
        tr = Trace(P=8)
        tr.append(simple_step())
        assert tr.total_messages == 8
        assert tr.total_bytes == 64

    def test_summary_mentions_relations(self):
        tr = Trace(P=8, label="demo")
        tr.append(simple_step())
        text = tr.summary()
        assert "demo" in text and "h1=1" in text and "M=8" in text
