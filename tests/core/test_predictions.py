"""Tests for the closed-form predictions of paper Section 4."""

import math

import pytest

from repro.core import predictions as pred
from repro.core.errors import ModelError
from repro.core.params import PAPER_UNBALANCED, paper_params

CM5 = paper_params("cm5")
MASPAR = paper_params("maspar")
GCEL = paper_params("gcel")


class TestMatmul:
    def test_bsp_formula(self):
        # T = alpha N^3/P + beta N^2/q^2 + 3 g N^2/q^2 + 2L with q=4, P=64
        N = 256
        t = pred.bsp_matmul(N, CM5, P=64)
        words = N * N / 16
        expected = (CM5.alpha * N**3 / 64 + CM5.beta_copy * words
                    + 3 * CM5.g * words + 2 * CM5.L)
        assert t == pytest.approx(expected)

    def test_paper_predicts_188ms_at_256(self):
        # §5.1: "for N = 256, the BSP model predicts an execution time of
        # 188 milliseconds" on the CM-5.
        t_ms = pred.bsp_matmul(256, CM5, P=64) / 1e3
        assert t_ms == pytest.approx(188, rel=0.10)

    def test_needs_cubic_processor_count(self):
        with pytest.raises(ModelError, match="q\\^3"):
            pred.bsp_matmul(64, CM5, P=100)

    def test_mp_bsp_exceeds_bsp_on_maspar(self):
        # (g+L) per word instead of g per word + L per superstep
        N = 512
        assert (pred.mp_bsp_matmul(N, MASPAR, P=512)
                > pred.bsp_matmul(N, MASPAR, P=512))

    def test_bpram_beats_bsp_on_gcel(self):
        # block transfers are the only way to fly on the GCel (§6)
        N = 256
        assert (pred.bpram_matmul(N, GCEL, P=64)
                < 0.5 * pred.bsp_matmul(N, GCEL, P=64))

    def test_compute_dominates_asymptotically(self):
        t = pred.bsp_matmul(4096, CM5, P=64)
        assert t == pytest.approx(CM5.alpha * 4096**3 / 64, rel=0.25)


class TestBitonic:
    def test_stage_count(self):
        # sum_{d<=log P} d merge steps
        M, P = 1024, 64
        t = pred.bsp_bitonic(M, CM5, P=P)
        steps = 0.5 * 6 * 7
        expected = (pred.local_sort_time(M, CM5)
                    + steps * (CM5.merge_alpha * M + CM5.g * M + CM5.L))
        assert t == pytest.approx(expected)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ModelError):
            pred.bsp_bitonic(64, CM5, P=48)

    def test_gcel_bpram_is_orders_of_magnitude_cheaper(self):
        # §6: "the MP-BPRAM version has almost two orders of magnitude
        # improvement over the BSP version" with 4K keys per processor.
        M = 4096
        bsp = pred.bsp_bitonic(M, GCEL, P=64)
        bpram = pred.bpram_bitonic(M, GCEL, P=64)
        assert bsp / bpram > 30

    def test_gcel_bsp_time_per_key_about_90ms(self):
        # §6: measured 86.1 ms per key for the synchronized BSP version.
        M = 4096
        per_key_ms = pred.bsp_bitonic(M, GCEL, P=64) / M / 1e3
        assert per_key_ms == pytest.approx(86.1, rel=0.25)

    def test_gcel_bpram_time_per_key_about_1_4ms(self):
        # §6: 1.36 ms per key for the MP-BPRAM variation.
        M = 4096
        per_key_ms = pred.bpram_bitonic(M, GCEL, P=64) / M / 1e3
        assert per_key_ms == pytest.approx(1.36, rel=0.35)

    def test_maspar_mp_bsp_vs_bpram_gain(self):
        # Fig. 17: observed gain ~2.1, maximum (g+L)/(w sigma) = 3.3.
        M = 256
        ratio = (pred.mp_bsp_bitonic(M, MASPAR)
                 / pred.bpram_bitonic(M, MASPAR))
        assert 1.5 < ratio < 3.3


class TestSampleSort:
    def test_bsp_phases_positive(self):
        t = pred.bsp_sample_sort(4096, GCEL, oversample=64, P=64)
        assert t > 0

    def test_mmax_default_reasonable(self):
        t1 = pred.bsp_sample_sort(1000, CM5, oversample=32, P=64)
        t2 = pred.bsp_sample_sort(1000, CM5, oversample=32, M_max=1000.0, P=64)
        assert t1 > t2  # default M_max inflates over the perfect split

    def test_oversample_validated(self):
        with pytest.raises(ModelError):
            pred.bsp_sample_sort(100, CM5, oversample=0)

    def test_bpram_send_phase_constant(self):
        # §6: the send substep alone costs about 16 sigma w N/P per proc
        # (4 sqrt(P) steps of 4 sigma w M / sqrt(P) bytes each).
        M, P = 4096, 64
        t_route = 4 * math.sqrt(P) * (4 * GCEL.sigma * GCEL.w * M / math.sqrt(P) + GCEL.ell)
        assert t_route == pytest.approx(16 * GCEL.sigma * GCEL.w * M + 32 * GCEL.ell)


class TestAPSP:
    def test_bsp_formula_large_m(self):
        N, P = 512, 1024
        M = N // 32
        t = pred.bsp_apsp(N, MASPAR, P=P)
        # M = 16 < sqrt(P) = 32 -> extra doubling phase
        t_bcast = 2 * (MASPAR.g * M + MASPAR.L) + (MASPAR.g + MASPAR.L) * 1
        assert t == pytest.approx(MASPAR.alpha * N**3 / P + 2 * N * t_bcast)

    def test_mp_bsp_overestimates_measured_magnitude(self):
        # §5.3: at N=512 the MP-BSP model predicts ~53.9 s on the MasPar.
        t_s = pred.mp_bsp_apsp(512, MASPAR, P=1024) / 1e6
        assert t_s == pytest.approx(53.9, rel=0.30)

    def test_ebsp_predicts_much_less_than_mp_bsp(self):
        # ... while the measured time is 30.3 s, and E-BSP captures it.
        unb = PAPER_UNBALANCED["maspar"]
        t_ebsp = pred.ebsp_apsp_maspar(512, MASPAR, unb, P=1024)
        t_mpbsp = pred.mp_bsp_apsp(512, MASPAR, P=1024)
        assert t_ebsp < 0.75 * t_mpbsp
        assert t_ebsp / 1e6 == pytest.approx(30.3, rel=0.35)

    def test_scatter_correction_reduces_gcel_prediction(self):
        t_plain = pred.bsp_apsp(512, GCEL, P=64)
        t_fixed = pred.scatter_corrected_apsp(512, GCEL, g_scatter=492.0, P=64)
        assert t_fixed < t_plain

    def test_geometry_validation(self):
        with pytest.raises(ModelError):
            pred.bsp_apsp(512, GCEL, P=60)
        with pytest.raises(ModelError):
            pred.bsp_apsp(100, GCEL, P=64)


class TestMflops:
    def test_matmul_mflops(self):
        # 2 N^3 flops in t microseconds
        assert pred.matmul_mflops(100, 2_000_000 / 1000) == pytest.approx(1000)

    def test_zero_time_rejected(self):
        with pytest.raises(ModelError):
            pred.flops_to_mflops(1.0, 0.0)
