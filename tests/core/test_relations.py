"""Tests for communication-pattern analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import TraceError
from repro.core.relations import CommPhase, Relation, merge_phases


def phase_from_messages(P, msgs, msg_bytes=4):
    """Helper: msgs = list of (src, dst) single messages."""
    if not msgs:
        return CommPhase.empty(P)
    src, dst = np.array(msgs).T
    return CommPhase(P=P, src=src, dst=dst,
                     count=np.ones(len(msgs), dtype=np.int64),
                     msg_bytes=np.full(len(msgs), msg_bytes, dtype=np.int64))


class TestBasics:
    def test_empty_phase(self):
        ph = CommPhase.empty(8)
        assert ph.is_empty
        assert ph.h == 0
        assert ph.total_messages == 0
        assert ph.active_procs == 0

    def test_counts_and_bytes(self):
        ph = CommPhase(P=4, src=[0, 0, 1], dst=[1, 2, 3],
                       count=[5, 1, 2], msg_bytes=[4, 8, 4])
        assert ph.total_messages == 8
        assert ph.total_bytes == 5 * 4 + 8 + 2 * 4
        assert ph.h_s == 6  # proc 0 sends 5 + 1
        assert ph.h_r == 5  # proc 1 receives 5
        assert ph.sends_per_proc.tolist() == [6, 2, 0, 0]
        assert ph.recvs_per_proc.tolist() == [0, 5, 1, 2]

    def test_out_of_range_endpoints_rejected(self):
        with pytest.raises(TraceError):
            phase_from_messages(4, [(0, 4)])
        with pytest.raises(TraceError):
            phase_from_messages(4, [(-1, 0)])

    def test_zero_count_rejected(self):
        with pytest.raises(TraceError):
            CommPhase(P=4, src=[0], dst=[1], count=[0], msg_bytes=[4])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TraceError):
            CommPhase(P=4, src=[0, 1], dst=[1], count=[1], msg_bytes=[4])


class TestRelation:
    def test_full_h_relation_detection(self):
        P = 8
        msgs = [(i, (i + 1) % P) for i in range(P)] * 3
        rel = phase_from_messages(P, msgs).relation()
        assert rel == Relation(M=24, h1=3, h2=3, active=8)
        assert rel.is_full_h_relation(P)
        assert rel.h == 3

    def test_unbalanced_relation(self):
        # Two processors exchange h messages: the paper's motivating
        # example for E-BSP (§2.3).
        rel = phase_from_messages(16, [(0, 1)] * 10).relation()
        assert rel.M == 10 and rel.h1 == 10 and rel.h2 == 10
        assert not rel.is_full_h_relation(16)
        assert rel.active == 2

    def test_scatter_relation(self):
        # One sender spreads messages: h1 large, h2 = 1.
        rel = phase_from_messages(8, [(0, d) for d in range(1, 8)]).relation()
        assert rel.h1 == 7 and rel.h2 == 1 and rel.M == 7


class TestPermutationDetection:
    def test_permutation_true(self):
        ph = CommPhase.permutation(np.array([1, 0, 3, 2]), 4)
        assert ph.is_partial_permutation

    def test_self_messages_skipped(self):
        ph = CommPhase.permutation(np.array([0, 1, 2, 3]), 4)
        assert ph.is_empty

    def test_inactive_entries(self):
        ph = CommPhase.permutation(np.array([-1, 2, 1, -1]), 4)
        assert ph.active_procs == 2
        assert ph.is_partial_permutation

    def test_non_permutation(self):
        ph = phase_from_messages(4, [(0, 1), (2, 1)])
        assert not ph.is_partial_permutation


class TestCubeDetection:
    @pytest.mark.parametrize("bit", [0, 1, 2, 4])
    def test_cube_bit_found(self, bit):
        P = 32
        perm = np.arange(P) ^ (1 << bit)
        assert CommPhase.permutation(perm, 4).cube_bit == bit

    def test_random_permutation_not_cube(self):
        rng = np.random.default_rng(3)
        perm = rng.permutation(64)
        while np.any(perm == np.arange(64)):
            perm = rng.permutation(64)
        ph = CommPhase.permutation(perm, 4)
        x = perm ^ np.arange(64)
        expected = -1
        first = int(x[0])
        if first > 0 and (first & (first - 1)) == 0 and np.all(x == first):
            expected = int(first).bit_length() - 1
        assert ph.cube_bit == expected == -1

    def test_mixed_bits_not_cube(self):
        # half the procs flip bit 0, the other half bit 1
        src = np.arange(8)
        dst = src.copy()
        dst[:4] ^= 1
        dst[4:] ^= 2
        ph = phase_from_messages(8, list(zip(src, dst)))
        assert ph.cube_bit == -1

    def test_non_permutation_not_cube(self):
        ph = phase_from_messages(8, [(0, 1), (2, 1)])
        assert ph.cube_bit == -1


class TestClusterLoads:
    def test_loads_sum_to_total(self):
        ph = phase_from_messages(64, [(i, (i * 7) % 64) for i in range(64)])
        loads = ph.dest_cluster_loads(16)
        assert loads.sum() == ph.total_messages
        assert loads.size == 4

    def test_concentrated_cluster(self):
        ph = phase_from_messages(64, [(i, 3) for i in range(10)])
        loads = ph.dest_cluster_loads(16)
        assert loads[0] == 10 and loads[1:].sum() == 0

    def test_bad_cluster_size(self):
        with pytest.raises(TraceError):
            CommPhase.empty(8).dest_cluster_loads(0)


class TestMaxFanIn:
    def test_distinct_senders(self):
        ph = phase_from_messages(8, [(0, 3), (1, 3), (2, 3), (0, 4)])
        assert ph.max_fan_in == 3

    def test_multiple_messages_one_sender_count_once(self):
        ph = CommPhase(P=8, src=[0], dst=[3], count=[10], msg_bytes=[4])
        assert ph.max_fan_in == 1


class TestSteps:
    def test_split_steps_roundtrip(self):
        ph = CommPhase(P=4, src=[0, 1, 2], dst=[1, 2, 3],
                       count=[1, 1, 1], msg_bytes=[4, 4, 4],
                       step=[0, 0, 1])
        subs = ph.split_steps()
        assert len(subs) == 2
        assert subs[0].total_messages == 2
        assert subs[1].total_messages == 1

    def test_untagged_is_single_step(self):
        ph = phase_from_messages(4, [(0, 1), (1, 2)])
        assert ph.n_steps == 1
        assert ph.split_steps() == [ph]

    def test_merge_phases_offsets_steps(self):
        a = CommPhase(P=4, src=[0], dst=[1], count=[1], msg_bytes=[4], step=[0])
        b = CommPhase(P=4, src=[1], dst=[2], count=[1], msg_bytes=[4], step=[0])
        merged = merge_phases([a, b])
        assert merged.n_steps == 2
        assert merged.total_messages == 2

    def test_merge_phases_different_P_rejected(self):
        with pytest.raises(TraceError):
            merge_phases([CommPhase.empty(4), CommPhase.empty(8)])

    def test_merge_phases_empty_list_rejected(self):
        with pytest.raises(TraceError):
            merge_phases([])


class TestPropertyBased:
    @given(st.integers(2, 64), st.data())
    @settings(max_examples=50, deadline=None)
    def test_summaries_consistent(self, P, data):
        n = data.draw(st.integers(0, 40))
        src = data.draw(st.lists(st.integers(0, P - 1), min_size=n, max_size=n))
        dst = data.draw(st.lists(st.integers(0, P - 1), min_size=n, max_size=n))
        count = data.draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
        ph = CommPhase(P=P, src=np.array(src, dtype=np.int64),
                       dst=np.array(dst, dtype=np.int64),
                       count=np.array(count, dtype=np.int64),
                       msg_bytes=np.full(n, 4, dtype=np.int64))
        rel = ph.relation()
        # invariants
        assert rel.M == sum(count)
        assert ph.sends_per_proc.sum() == rel.M
        assert ph.recvs_per_proc.sum() == rel.M
        assert rel.h1 == ph.h_s >= (rel.M + P - 1) // P or rel.M == 0
        assert rel.h2 == ph.h_r
        assert 0 <= rel.active <= P
        assert rel.h == max(rel.h1, rel.h2)

    @given(st.integers(2, 6))
    def test_full_permutation_relation(self, logP):
        P = 2 ** logP
        perm = np.roll(np.arange(P), 1)
        rel = CommPhase.permutation(perm, 4).relation()
        assert rel.is_full_h_relation(P) and rel.h == 1 and rel.active == P
