"""BSF scalability bound: sound against simulated speedup curves.

The BSF model's headline prediction is ``P_max = sqrt(t_comp /
t_interact)`` — the farm size past which adding workers slows the
computation down.  These tests pin the bound three ways:

* *internal consistency*: ``p_max`` really is the minimiser of the
  model's own ``T(P') = t_comp/P' + t_interact * P'`` (exact calculus,
  checked on real traces at the neighbouring integers);
* *pessimism soundness*: the master-relay serialisation makes BSF an
  upper envelope — its predicted time dominates the simulated time at
  every farm size of a radix-sort P-sweep, so a farm sized by ``P_max``
  never over-promises against the simulated machines;
* *metamorphic scaling*: multiplying every compute coefficient by
  ``k`` scales ``t_comp`` by ``k`` and therefore ``p_max`` by
  ``sqrt(k)`` — interaction and computation do not leak into each
  other.
"""

import math

import pytest

from repro.algorithms import radix
from repro.core.bsf import BSF
from repro.core.params import paper_params
from repro.machines import MasParMP1

pytestmark = pytest.mark.fast

PARAMS = paper_params("maspar")

#: fixed total problem (N = 4096 keys) spread over growing farms.
SWEEP_P = (16, 64, 256)
TOTAL_KEYS = 4096


def sweep():
    out = []
    for P in SWEEP_P:
        machine = MasParMP1(P=P, seed=3)
        res = radix.run(machine, TOTAL_KEYS // P, variant="bsp", P=P,
                        seed=1)
        out.append((P, res))
    return out


class TestPmaxIsTheArgmin:
    def test_minimises_predicted_time_on_real_traces(self):
        """T(P') is unimodal with its minimum at p_max: both integer
        neighbours of the bound predict no less, and the curve rises
        monotonically away from it on each side."""
        for P, res in sweep():
            model = BSF(PARAMS.with_updates(P=P))
            pm = model.p_max(res.trace)
            assert 0 < pm < float("inf")
            t_star = model.predicted_time(res.trace, P=pm)
            lo, hi = math.floor(pm), math.ceil(pm)
            for cand in {max(1, lo), hi}:
                assert model.predicted_time(res.trace, P=cand) \
                    >= t_star * (1 - 1e-12)
            # walking away from p_max only gets worse
            samples = [max(1, lo // 4), max(1, lo // 2), hi * 2, hi * 4]
            prev_left = t_star
            for cand in (max(1, lo // 2), max(1, lo // 4)):
                t = model.predicted_time(res.trace, P=cand)
                assert t >= prev_left * (1 - 1e-12)
                prev_left = t
            prev_right = t_star
            for cand in (hi * 2, hi * 4):
                t = model.predicted_time(res.trace, P=cand)
                assert t >= prev_right * (1 - 1e-12)
                prev_right = t
            del samples

    def test_interaction_free_trace_scales_forever(self):
        """No communication -> p_max = inf and T(P') keeps falling."""
        from repro.algorithms import stencil  # local compute + halos

        machine = MasParMP1(P=16, seed=0)
        res = stencil.run(machine, 16, 2, seed=0)
        model = BSF(PARAMS.with_updates(P=16))
        if model.t_interact(res.trace) == 0.0:
            assert model.p_max(res.trace) == float("inf")
        else:  # stencil does communicate: the bound is still finite
            assert model.p_max(res.trace) > 0


class TestPessimismSoundness:
    def test_predicted_dominates_simulated_at_every_farm_size(self):
        """Relaying every word through a master cannot beat a direct
        network: BSF's prediction is an upper envelope of the simulated
        time at each swept P, so its speedup curve is a lower bound and
        P_max is a conservative scalability floor."""
        for P, res in sweep():
            model = BSF(PARAMS.with_updates(P=P))
            assert model.predicted_time(res.trace) >= res.time_us, \
                f"BSF under-predicted at P={P}"

    def test_bound_is_meaningful_for_the_sweep(self):
        """The sweep's bounds sit inside the swept range (the model
        does not claim unlimited farm scaling for a sort)."""
        pms = []
        for P, res in sweep():
            model = BSF(PARAMS.with_updates(P=P))
            pms.append(model.p_max(res.trace))
        assert all(1.0 < pm < 10 * SWEEP_P[-1] for pm in pms)


class TestScalingLaw:
    @pytest.mark.parametrize("k", [4, 9])
    def test_compute_scaling_scales_pmax_by_sqrt(self, k):
        """work x k  =>  t_comp x k  =>  p_max x sqrt(k): the
        interaction term never sees the compute coefficients.  (Traces
        carry a sliver of constant-time Generic bookkeeping that no
        coefficient scales, hence the 1e-3 tolerance, not exactness.)"""
        machine = MasParMP1(P=16, seed=3)
        res = radix.run(machine, 256, variant="bsp", P=16, seed=1)
        base = BSF(PARAMS.with_updates(P=16))
        heavy = BSF(PARAMS.with_updates(
            P=16, alpha=PARAMS.alpha * k, beta_copy=PARAMS.beta_copy * k,
            sort_beta=PARAMS.sort_beta * k,
            sort_gamma=PARAMS.sort_gamma * k,
            merge_alpha=PARAMS.merge_alpha * k))
        assert math.isclose(heavy.t_comp(res.trace),
                            k * base.t_comp(res.trace), rel_tol=1e-3)
        assert math.isclose(heavy.t_interact(res.trace),
                            base.t_interact(res.trace), rel_tol=1e-12)
        assert math.isclose(heavy.p_max(res.trace),
                            math.sqrt(k) * base.p_max(res.trace),
                            rel_tol=1e-3)
