"""Tests for the BSP / MP-BSP / MP-BPRAM / E-BSP trace pricers."""

import numpy as np
import pytest

from repro.core.bpram import MPBPRAM
from repro.core.bsp import BSP
from repro.core.ebsp import EBSP, ScatterAwareBSP
from repro.core.errors import ModelError
from repro.core.mp_bsp import MPBSP
from repro.core.params import PAPER_UNBALANCED, paper_params
from repro.core.relations import CommPhase
from repro.core.trace import Superstep, Trace
from repro.core.work import Flops

CM5 = paper_params("cm5")
MASPAR = paper_params("maspar")
GCEL = paper_params("gcel")


def full_h_relation(P, h, msg_bytes):
    perm = np.roll(np.arange(P), 1)
    return CommPhase(P=P, src=np.arange(P), dst=perm,
                     count=np.full(P, h, dtype=np.int64),
                     msg_bytes=np.full(P, msg_bytes, dtype=np.int64))


class TestBSP:
    def test_full_h_relation_cost(self):
        model = BSP(CM5)
        ph = full_h_relation(64, 10, msg_bytes=8)
        assert model.comm_cost(ph) == pytest.approx(10 * CM5.g + CM5.L)

    def test_empty_phase_is_free(self):
        assert BSP(CM5).comm_cost(CommPhase.empty(64)) == 0.0

    def test_long_messages_count_as_words(self):
        # BSP gives no special treatment to long messages (§1): a 80-byte
        # message on the CM-5 (w=8) counts as 10 messages.
        model = BSP(CM5)
        ph = CommPhase(P=64, src=[0], dst=[1], count=[1], msg_bytes=[80])
        assert model.comm_cost(ph) == pytest.approx(10 * CM5.g + CM5.L)

    def test_superstep_adds_compute(self):
        model = BSP(CM5)
        step = Superstep(phase=full_h_relation(64, 1, 8))
        step.add_work(0, Flops(1000))
        expected = 1000 * CM5.alpha + CM5.g + CM5.L
        assert model.superstep_cost(step) == pytest.approx(expected)

    def test_max_over_procs_not_sum(self):
        model = BSP(CM5)
        step = Superstep(phase=full_h_relation(64, 1, 8))
        step.add_work(0, Flops(1000))
        step.add_work(1, Flops(400))
        assert model.superstep_cost(step) == pytest.approx(
            1000 * CM5.alpha + CM5.g + CM5.L)

    def test_trace_cost_sums(self):
        model = BSP(CM5)
        tr = Trace(P=64)
        for _ in range(3):
            tr.append(Superstep(phase=full_h_relation(64, 2, 8)))
        assert model.trace_cost(tr) == pytest.approx(3 * (2 * CM5.g + CM5.L))

    def test_unbalanced_charged_as_full(self):
        # BSP charges two-processor traffic as if it were a full h-relation —
        # the pessimism E-BSP fixes (§2.3).
        model = BSP(CM5)
        ph = CommPhase(P=64, src=[0], dst=[1], count=[50], msg_bytes=[8])
        assert model.comm_cost(ph) == pytest.approx(50 * CM5.g + CM5.L)


class TestMPBSP:
    def test_repeated_permutation(self):
        # h permutation steps cost h * (g + L) under MP-BSP (§4.2).
        model = MPBSP(MASPAR)
        ph = full_h_relation(1024, 16, msg_bytes=4)
        assert model.comm_cost(ph) == pytest.approx(16 * (MASPAR.g + MASPAR.L))

    def test_one_h_relation_step(self):
        # A single step where a destination receives h messages costs
        # L + g*h (§3.1).
        model = MPBSP(MASPAR)
        src = np.arange(1, 9)
        ph = CommPhase(P=1024, src=src, dst=np.zeros(8, dtype=np.int64),
                       count=np.ones(8, dtype=np.int64),
                       msg_bytes=np.full(8, 4, dtype=np.int64),
                       step=np.zeros(8, dtype=np.int64))
        assert model.comm_cost(ph) == pytest.approx(MASPAR.L + 8 * MASPAR.g)

    def test_explicit_steps_summed(self):
        model = MPBSP(MASPAR)
        ph = CommPhase(P=16, src=[0, 0], dst=[1, 2], count=[1, 1],
                       msg_bytes=[4, 4], step=[0, 1])
        assert model.comm_cost(ph) == pytest.approx(2 * (MASPAR.g + MASPAR.L))

    def test_multi_send_step_decomposes(self):
        # A processor sending two words in one scheduled step needs two
        # sequential single-port steps.
        model = MPBSP(MASPAR)
        ph = CommPhase(P=16, src=[0, 0], dst=[1, 2], count=[1, 1],
                       msg_bytes=[4, 4], step=[0, 0])
        assert model.comm_cost(ph) == pytest.approx(2 * (MASPAR.g + MASPAR.L))

    def test_long_message_counts_as_words(self):
        model = MPBSP(MASPAR)
        ph = CommPhase(P=16, src=[0], dst=[1], count=[1], msg_bytes=[16])
        assert model.comm_cost(ph) == pytest.approx(4 * (MASPAR.g + MASPAR.L))

    def test_empty_free(self):
        assert MPBSP(MASPAR).comm_cost(CommPhase.empty(4)) == 0.0


class TestMPBPRAM:
    def test_block_permutation(self):
        model = MPBPRAM(GCEL)
        ph = CommPhase.permutation(np.roll(np.arange(64), 1), 4096)
        assert model.comm_cost(ph) == pytest.approx(GCEL.sigma * 4096 + GCEL.ell)

    def test_sequence_of_blocks(self):
        model = MPBPRAM(GCEL)
        P = 64
        ph = CommPhase(P=P, src=np.arange(P), dst=np.roll(np.arange(P), 1),
                       count=np.full(P, 3, dtype=np.int64),
                       msg_bytes=np.full(P, 1000, dtype=np.int64))
        assert model.comm_cost(ph) == pytest.approx(3 * (GCEL.sigma * 1000 + GCEL.ell))

    def test_everyone_waits_for_longest(self):
        # "every processor awaits the completion of the longest block
        # transfer" (§2.2)
        model = MPBPRAM(GCEL)
        ph = CommPhase(P=64, src=[0, 2], dst=[1, 3], count=[1, 1],
                       msg_bytes=[100, 5000], step=[0, 0])
        assert model.comm_cost(ph) == pytest.approx(GCEL.sigma * 5000 + GCEL.ell)

    def test_single_port_convergence_serialises(self):
        # Two blocks converging on one processor need two steps: the
        # single-port restriction the paper stresses for sample sort.
        model = MPBPRAM(GCEL)
        ph = CommPhase(P=64, src=[0, 2], dst=[1, 1], count=[1, 1],
                       msg_bytes=[100, 100], step=[0, 0])
        assert model.comm_cost(ph) == pytest.approx(
            2 * GCEL.ell + GCEL.sigma * 200)

    def test_direct_bucket_routing_explodes(self):
        # Routing M keys straight to one bucket pays M startups — why the
        # paper's MP-BPRAM sample sort needs the multi-phase scheme.
        model = MPBPRAM(GCEL)
        ph = CommPhase(P=64, src=np.arange(1, 64), dst=np.zeros(63, dtype=np.int64),
                       count=np.ones(63, dtype=np.int64),
                       msg_bytes=np.full(63, 400, dtype=np.int64))
        assert model.comm_cost(ph) >= 63 * GCEL.ell

    def test_empty_free(self):
        assert MPBPRAM(GCEL).comm_cost(CommPhase.empty(4)) == 0.0


class TestEBSP:
    def test_full_permutation_costs_t_unb_full(self):
        unb = PAPER_UNBALANCED["maspar"]
        model = EBSP(MASPAR, unb)
        ph = CommPhase.permutation(np.roll(np.arange(1024), 1), 4)
        assert model.comm_cost(ph) == pytest.approx(unb(1024))

    def test_partial_permutation_discounted(self):
        # The whole point of E-BSP: 32 active PEs cost ~13% of full (§3.1).
        unb = PAPER_UNBALANCED["maspar"]
        model = EBSP(MASPAR, unb)
        perm = np.full(1024, -1)
        perm[:32] = np.arange(32) + 100
        partial = model.comm_cost(CommPhase.permutation(perm, 4))
        full = model.comm_cost(
            CommPhase.permutation(np.roll(np.arange(1024), 1), 4))
        assert partial / full == pytest.approx(0.13, abs=0.03)

    def test_repeated_permutation_scales_linearly(self):
        unb = PAPER_UNBALANCED["maspar"]
        model = EBSP(MASPAR, unb)
        ph = full_h_relation(1024, 5, msg_bytes=4)
        assert model.comm_cost(ph) == pytest.approx(5 * unb(1024))

    def test_multi_send_step_decomposes(self):
        unb = PAPER_UNBALANCED["maspar"]
        model = EBSP(MASPAR, unb)
        ph = CommPhase(P=16, src=[0, 0], dst=[1, 2], count=[1, 1],
                       msg_bytes=[4, 4], step=[0, 0])
        assert model.comm_cost(ph) == pytest.approx(2 * unb(1))

    def test_one_h_relation_adds_g_tail(self):
        unb = PAPER_UNBALANCED["maspar"]
        model = EBSP(MASPAR, unb)
        src = np.arange(1, 9)
        ph = CommPhase(P=1024, src=src, dst=np.zeros(8, dtype=np.int64),
                       count=np.ones(8, dtype=np.int64),
                       msg_bytes=np.full(8, 4, dtype=np.int64),
                       step=np.zeros(8, dtype=np.int64))
        assert model.comm_cost(ph) == pytest.approx(unb(8) + 7 * MASPAR.g)


class TestScatterAwareBSP:
    def test_scatter_uses_g_mscat(self):
        # GCel multinode scatter: factor ~9.1 cheaper than BSP (§5.3).
        model = ScatterAwareBSP(GCEL, g_scatter=492.0)
        P = 64
        src, dst = [], []
        senders = list(range(8))
        for s in senders:
            for d in range(P):
                if d not in senders:
                    src.append(s)
                    dst.append(d)
        n = len(src)
        ph = CommPhase(P=P, src=np.array(src), dst=np.array(dst),
                       count=np.ones(n, dtype=np.int64),
                       msg_bytes=np.full(n, 4, dtype=np.int64))
        h = ph.h_s
        assert model.comm_cost(ph) == pytest.approx(492.0 * h + GCEL.L)
        assert model.comm_cost(ph) < BSP(GCEL).comm_cost(ph) / 5

    def test_full_relation_falls_back_to_bsp(self):
        model = ScatterAwareBSP(GCEL, g_scatter=492.0)
        ph = full_h_relation(64, 4, msg_bytes=4)
        assert model.comm_cost(ph) == pytest.approx(BSP(GCEL).comm_cost(ph))

    def test_bad_g_scatter(self):
        with pytest.raises(ModelError):
            ScatterAwareBSP(GCEL, g_scatter=0.0)


class TestModelDisagreement:
    def test_bulk_transfer_ranking_on_gcel(self):
        """On the GCel, MP-BPRAM prices a big pairwise exchange far below
        BSP — the factor-120 observation of §3.2/§6."""
        ph = CommPhase.permutation(np.roll(np.arange(64), 1), 4096)
        bsp = BSP(GCEL).comm_cost(ph)
        bpram = MPBPRAM(GCEL).comm_cost(ph)
        assert bsp / bpram > 50

    def test_bulk_transfer_modest_on_cm5(self):
        ph = CommPhase.permutation(np.roll(np.arange(64), 1), 4096)
        bsp = BSP(CM5).comm_cost(ph)
        bpram = MPBPRAM(CM5).comm_cost(ph)
        assert 2 < bsp / bpram < 6
