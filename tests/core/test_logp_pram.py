"""Tests for the extension cost models: LogP, LogGP and PRAM."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.core.logp import LogGP, LogP, LogPParams, logp_from_table1
from repro.core.params import paper_params
from repro.core.pram import PRAM
from repro.core.relations import CommPhase
from repro.core.trace import Superstep, Trace
from repro.core.work import Flops

GCEL = paper_params("gcel")
CM5 = paper_params("cm5")


def perm_phase(P, count, msg_bytes):
    return CommPhase(P=P, src=np.arange(P), dst=np.roll(np.arange(P), 1),
                     count=np.full(P, count, dtype=np.int64),
                     msg_bytes=np.full(P, msg_bytes, dtype=np.int64))


class TestLogPParams:
    def test_validation(self):
        with pytest.raises(ModelError):
            LogPParams(P=0, L=1, o=1, g=1)
        with pytest.raises(ModelError):
            LogPParams(P=4, L=-1, o=1, g=1)

    def test_capacity(self):
        assert LogPParams(P=4, L=10, o=1, g=4).capacity == 3
        assert LogPParams(P=4, L=10, o=1, g=0).capacity == 1

    def test_mapping_from_table1(self):
        lp = logp_from_table1(GCEL)
        assert lp.o == pytest.approx(GCEL.g / 2)
        assert lp.g == GCEL.g
        assert lp.G == GCEL.sigma
        assert lp.w == GCEL.w


class TestLogP:
    def test_single_permutation(self):
        lp = LogPParams(P=8, L=10, o=3, g=5, w=4)
        model = LogP(GCEL.with_updates(P=8), lp)
        # each proc sends 1 + receives 1: busy 2o, no stalls, + L
        assert model.comm_cost(perm_phase(8, 1, 4)) == pytest.approx(
            2 * 3 + 10)

    def test_gap_limits_injection(self):
        lp = LogPParams(P=8, L=10, o=1, g=5, w=4)
        model = LogP(GCEL.with_updates(P=8), lp)
        # k = 10 messages each way: busy 20*o + 9 stalls of (g - o)
        assert model.comm_cost(perm_phase(8, 10, 4)) == pytest.approx(
            20 * 1 + 9 * 4 + 10)

    def test_long_messages_count_as_words(self):
        lp = LogPParams(P=8, L=0, o=1, g=1, w=4)
        model = LogP(GCEL.with_updates(P=8), lp)
        one_big = CommPhase(P=8, src=[0], dst=[1], count=[1], msg_bytes=[40])
        ten_small = CommPhase(P=8, src=[0] * 10, dst=[1] * 10,
                              count=np.ones(10, dtype=np.int64),
                              msg_bytes=np.full(10, 4, dtype=np.int64))
        assert model.comm_cost(one_big) == pytest.approx(
            model.comm_cost(ten_small))

    def test_empty_free(self):
        lp = logp_from_table1(GCEL)
        assert LogP(GCEL, lp).comm_cost(CommPhase.empty(8)) == 0.0


class TestLogGP:
    def test_long_message_formula(self):
        # o + (m - w) G + L + o, sender-side streaming
        lp = LogPParams(P=8, L=10, o=3, g=3, G=0.5, w=4)
        model = LogGP(GCEL.with_updates(P=8), lp)
        ph = perm_phase(8, 1, 104)
        assert model.comm_cost(ph) == pytest.approx(2 * 3 + 100 * 0.5 + 10)

    def test_bulk_much_cheaper_than_logp(self):
        lp = logp_from_table1(GCEL)
        big = perm_phase(64, 1, 4096)
        assert (LogGP(GCEL, lp).comm_cost(big)
                < LogP(GCEL, lp).comm_cost(big) / 20)

    def test_tracks_mp_bpram_on_block_permutation(self):
        from repro.core.bpram import MPBPRAM
        lp = logp_from_table1(GCEL)
        ph = perm_phase(64, 1, 8192)
        loggp = LogGP(GCEL, lp).comm_cost(ph)
        bpram = MPBPRAM(GCEL).comm_cost(ph)
        assert loggp == pytest.approx(bpram, rel=0.25)


class TestPRAM:
    def test_communication_is_free(self):
        model = PRAM(GCEL)
        assert model.comm_cost(perm_phase(64, 1000, 4)) == 0.0

    def test_computation_still_charged(self):
        model = PRAM(CM5)
        step = Superstep(phase=perm_phase(64, 10, 8))
        step.add_work(0, Flops(1000))
        assert model.superstep_cost(step) == pytest.approx(1000 * CM5.alpha)

    def test_trace_cost_is_compute_only(self):
        tr = Trace(P=64)
        s = Superstep(phase=perm_phase(64, 5, 8))
        s.add_work(3, Flops(100))
        tr.append(s)
        assert PRAM(CM5).trace_cost(tr) == pytest.approx(100 * CM5.alpha)
