"""Property-based tests (hypothesis) for communication-pattern analysis.

The invariants the cost models lean on, checked over random send sets:

* the BSP summary decomposes as ``h = max(h_s, h_r)``;
* per-destination/per-source loads sum to the total message count;
* cube-permutation detection fires exactly on single-bit-XOR patterns.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import CommPhase

#: (P, groups) — each group is (src, dst, count, msg_bytes)
send_sets = st.integers(min_value=1, max_value=64).flatmap(
    lambda P: st.tuples(
        st.just(P),
        st.lists(
            st.tuples(st.integers(0, P - 1), st.integers(0, P - 1),
                      st.integers(1, 8), st.integers(0, 64)),
            max_size=40)))


def _phase(P, groups) -> CommPhase:
    if not groups:
        return CommPhase.empty(P)
    src, dst, count, nbytes = (np.array(col, dtype=np.int64)
                               for col in zip(*groups))
    return CommPhase(P=P, src=src, dst=dst, count=count, msg_bytes=nbytes)


class TestHDecomposition:
    @given(send_sets)
    def test_h_is_max_of_hs_hr(self, case):
        phase = _phase(*case)
        assert phase.h == max(phase.h_s, phase.h_r)
        assert phase.h_s == int(phase.sends_per_proc.max(initial=0))
        assert phase.h_r == int(phase.recvs_per_proc.max(initial=0))

    @given(send_sets)
    def test_relation_agrees_with_phase(self, case):
        phase = _phase(*case)
        rel = phase.relation()
        assert rel.h == phase.h
        assert (rel.M, rel.h1, rel.h2) == (phase.total_messages,
                                           phase.h_s, phase.h_r)
        assert rel.active == phase.active_procs <= case[0]

    @given(send_sets)
    def test_partial_permutation_iff_h_at_most_1(self, case):
        phase = _phase(*case)
        assert phase.is_partial_permutation == (phase.h <= 1)


class TestLoadConservation:
    @given(send_sets)
    def test_sends_and_recvs_sum_to_total(self, case):
        phase = _phase(*case)
        assert int(phase.sends_per_proc.sum()) == phase.total_messages
        assert int(phase.recvs_per_proc.sum()) == phase.total_messages

    @given(send_sets)
    def test_bytes_conserved(self, case):
        phase = _phase(*case)
        assert int(phase.bytes_sent_per_proc.sum()) == phase.total_bytes
        assert int(phase.bytes_recv_per_proc.sum()) == phase.total_bytes

    @given(send_sets, st.integers(1, 16))
    def test_cluster_loads_sum_to_total(self, case, cluster_size):
        phase = _phase(*case)
        loads = phase.dest_cluster_loads(cluster_size)
        assert int(loads.sum()) == phase.total_messages
        assert loads.size == -(-case[0] // cluster_size)

    @given(send_sets)
    def test_split_steps_partition_messages(self, case):
        phase = _phase(*case)
        pieces = phase.split_steps()
        assert sum(p.total_messages for p in pieces) == phase.total_messages


class TestCubeDetection:
    @given(st.integers(1, 6), st.integers(0, 5), st.integers(1, 8),
           st.data())
    def test_true_cube_pattern_detected(self, log_p, bit, count, data):
        P = 2 ** log_p
        bit = bit % log_p
        # any non-empty subset of sources, all exchanging along one axis
        srcs = data.draw(st.lists(st.integers(0, P - 1), min_size=1,
                                  unique=True))
        src = np.array(srcs, dtype=np.int64)
        dst = src ^ (1 << bit)
        phase = CommPhase(P=P, src=src, dst=dst,
                          count=np.full(src.size, count, dtype=np.int64),
                          msg_bytes=np.full(src.size, 4, dtype=np.int64))
        assert phase.cube_bit == bit

    @given(send_sets)
    @settings(max_examples=200)
    def test_cube_bit_only_on_single_bit_xor(self, case):
        """The detector fires iff every src^dst is one fixed power of two."""
        phase = _phase(*case)
        k = phase.cube_bit
        if phase.is_empty:
            assert k == -1
            return
        xors = set(int(x) for x in (phase.src ^ phase.dst))
        is_cube = (len(xors) == 1
                   and (x := next(iter(xors))) > 0 and x & (x - 1) == 0)
        if is_cube:
            assert k == next(iter(xors)).bit_length() - 1
        else:
            assert k == -1

    def test_mixed_bits_rejected(self):
        # src^dst is a power of two per message but not one fixed bit
        phase = CommPhase(P=8, src=[0, 1], dst=[1, 3], count=[1, 1],
                          msg_bytes=[4, 4])
        assert phase.cube_bit == -1

    def test_non_power_of_two_xor_rejected(self):
        phase = CommPhase(P=8, src=[0, 5], dst=[3, 6], count=[1, 1],
                          msg_bytes=[4, 4])
        assert phase.cube_bit == -1

    def test_self_message_rejected(self):
        # src == dst gives xor 0, which is not a cube exchange
        phase = CommPhase(P=8, src=[2], dst=[2], count=[1], msg_bytes=[4])
        assert phase.cube_bit == -1
