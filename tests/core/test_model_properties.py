"""Property-based algebra of the cost models (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BSP, MPBPRAM, MPBSP, paper_params
from repro.core.logp import LogGP, logp_from_table1
from repro.core.pram import PRAM
from repro.core.relations import CommPhase, merge_phases

GCEL = paper_params("gcel")
CM5 = paper_params("cm5")


def phases(draw, P=16, max_groups=12):
    n = draw(st.integers(1, max_groups))
    src = draw(st.lists(st.integers(0, P - 1), min_size=n, max_size=n))
    dst = draw(st.lists(st.integers(0, P - 1), min_size=n, max_size=n))
    count = draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
    size = draw(st.lists(st.sampled_from([4, 8, 64, 1024]),
                         min_size=n, max_size=n))
    return CommPhase(P=P, src=np.array(src), dst=np.array(dst),
                     count=np.array(count), msg_bytes=np.array(size))


def all_models(params):
    return [BSP(params), MPBSP(params), MPBPRAM(params), PRAM(params),
            LogGP(params, logp_from_table1(params))]


class TestUniversalProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_nonnegative_and_finite(self, data):
        ph = phases(data.draw)
        for model in all_models(GCEL):
            cost = model.comm_cost(ph)
            assert np.isfinite(cost) and cost >= 0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, data):
        ph = phases(data.draw)
        for model in all_models(CM5):
            assert model.comm_cost(ph) == model.comm_cost(ph)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_added_traffic(self, data):
        """Adding a message group never reduces a model's charge.

        MP-BSP is excluded by design: it prices the *best* single-port
        schedule, and an extra send can allow spreading the hot
        receiver's messages over more steps (see the dedicated test
        below) — every other model is strictly monotone.
        """
        ph = phases(data.draw)
        extra = CommPhase(P=ph.P, src=np.append(ph.src, 0),
                          dst=np.append(ph.dst, 1),
                          count=np.append(ph.count, 3),
                          msg_bytes=np.append(ph.msg_bytes, 1024))
        for model in all_models(GCEL):
            if model.name == "mp-bsp":
                continue
            assert model.comm_cost(extra) >= model.comm_cost(ph) - 1e-9

    def test_mp_bsp_schedule_spreading_artifact(self):
        """An extra send can *reduce* the MP-BSP charge: 7 sends against
        an 8-receive hot spot need 7 steps of 1-2 relations (7L + 14g),
        while 8 sends spread it into 8 clean permutation steps (8L + 8g)
        — cheaper whenever 6g > L.  The model prices the best schedule,
        so this is intended (if surprising) behaviour."""
        P = 16
        model = MPBSP(GCEL)
        # proc 0 sends 7 messages; proc 1 receives 8 (one extra from
        # proc 2): best schedule has s = 7 steps, hot receiver 2/step.
        before = CommPhase(P=P, src=[0] * 7 + [2], dst=[1] * 8,
                           count=np.ones(8, dtype=np.int64),
                           msg_bytes=np.full(8, 4, dtype=np.int64))
        cost7 = model.comm_cost(before)
        assert cost7 == pytest.approx(7 * (GCEL.L + 2 * GCEL.g))
        # give proc 0 one more message to an *idle* destination: now the
        # schedule has 8 steps and the hot receiver fits 1/step.
        after = CommPhase(P=P, src=[0] * 8 + [2], dst=[1] * 7 + [4, 1],
                          count=np.ones(9, dtype=np.int64),
                          msg_bytes=np.full(9, 4, dtype=np.int64))
        cost8 = model.comm_cost(after)
        assert cost8 == pytest.approx(8 * (GCEL.L + GCEL.g))
        assert cost8 < cost7  # more traffic, lower best-schedule price

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_merging_supersteps_saves_latency(self, data):
        """cost(a ++ b) <= cost(a) + cost(b): one superstep never beats
        two by more than the combined charge (subadditive composition)."""
        a = phases(data.draw)
        b = phases(data.draw)
        merged = merge_phases([a, b])
        for model in (BSP(GCEL), MPBPRAM(GCEL), PRAM(GCEL)):
            assert (model.comm_cost(merged)
                    <= model.comm_cost(a) + model.comm_cost(b) + 1e-6)

    @given(st.integers(1, 12), st.sampled_from([4, 64, 4096]))
    @settings(max_examples=30, deadline=None)
    def test_count_scaling_linear_minus_latency(self, k, size):
        """Scaling a permutation's count scales the bandwidth term."""
        perm = np.roll(np.arange(16), 1)
        one = CommPhase(P=16, src=np.arange(16), dst=perm,
                        count=np.ones(16, dtype=np.int64),
                        msg_bytes=np.full(16, size, dtype=np.int64))
        many = CommPhase(P=16, src=np.arange(16), dst=perm,
                         count=np.full(16, k, dtype=np.int64),
                         msg_bytes=np.full(16, size, dtype=np.int64))
        model = BSP(GCEL)
        base = model.comm_cost(one) - GCEL.L
        assert model.comm_cost(many) == pytest.approx(k * base + GCEL.L,
                                                      rel=1e-9)


class TestRankingInvariants:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_pram_is_a_lower_bound(self, data):
        ph = phases(data.draw)
        pram = PRAM(GCEL).comm_cost(ph)
        for model in (BSP(GCEL), MPBSP(GCEL), MPBPRAM(GCEL)):
            assert pram <= model.comm_cost(ph)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_mp_bsp_dominates_bsp(self, data):
        """Single-port sequential steps can never beat one bulk
        superstep under the same (g, L): MP-BSP >= BSP."""
        ph = phases(data.draw)
        assert MPBSP(GCEL).comm_cost(ph) >= BSP(GCEL).comm_cost(ph) - 1e-6

    @given(st.sampled_from([256, 1024, 8192]))
    @settings(max_examples=10, deadline=None)
    def test_bpram_beats_bsp_on_blocks_gcel(self, size):
        perm = np.roll(np.arange(64), 1)
        ph = CommPhase.permutation(perm, size)
        assert MPBPRAM(GCEL).comm_cost(ph) < BSP(GCEL).comm_cost(ph)
