"""Tests for model parameter sets (Table 1)."""

import math

import pytest

from repro.core.errors import ModelError
from repro.core.params import PAPER_PARAMS, PAPER_UNBALANCED, ModelParams, UnbalancedCost, paper_params


class TestPaperParams:
    def test_table1_machines_present(self):
        assert set(PAPER_PARAMS) == {"maspar", "gcel", "cm5"}

    def test_table1_values(self):
        mp = paper_params("maspar")
        assert (mp.P, mp.g, mp.L, mp.sigma, mp.ell) == (1024, 32.2, 1400.0, 107.0, 630.0)
        gc = paper_params("gcel")
        assert (gc.P, gc.g, gc.L, gc.sigma, gc.ell) == (64, 4480.0, 5100.0, 9.3, 6900.0)
        cm = paper_params("cm5")
        assert (cm.P, cm.g, cm.L, cm.sigma, cm.ell) == (64, 9.1, 45.0, 0.27, 75.0)

    def test_word_sizes(self):
        assert paper_params("maspar").w == 4
        assert paper_params("gcel").w == 4
        assert paper_params("cm5").w == 8  # double precision (§3.3)

    def test_unknown_machine_raises(self):
        with pytest.raises(ModelError, match="unknown machine"):
            paper_params("cray")

    def test_gcel_bulk_gain_is_about_120(self):
        # §3.2: "For the GCel, this ratio is about 120."
        assert paper_params("gcel").bulk_gain == pytest.approx(120, rel=0.02)

    def test_cm5_bulk_gain_is_about_4_2(self):
        # §3.3: "the ratio g/(w sigma) is about 4.2."
        assert paper_params("cm5").bulk_gain == pytest.approx(4.2, rel=0.02)

    def test_maspar_single_port_bulk_gain_is_about_3_3(self):
        # §6: "(g+L)/(w sigma) = 3.3" for the MasPar.
        assert paper_params("maspar").single_port_bulk_gain == pytest.approx(3.3, rel=0.05)

    def test_h_relation_time(self):
        p = paper_params("cm5")
        assert p.h_relation_time(10) == pytest.approx(10 * 9.1 + 45)

    def test_block_message_time(self):
        p = paper_params("gcel")
        assert p.block_message_time(1000) == pytest.approx(9.3 * 1000 + 6900)

    def test_with_updates_returns_new_instance(self):
        p = paper_params("cm5")
        p2 = p.with_updates(P=128)
        assert p2.P == 128 and p.P == 64
        assert p2.g == p.g


class TestParamValidation:
    def test_negative_g_rejected(self):
        with pytest.raises(ModelError):
            ModelParams(machine="x", P=4, g=-1.0, L=0, sigma=0, ell=0)

    def test_zero_procs_rejected(self):
        with pytest.raises(ModelError):
            ModelParams(machine="x", P=0, g=1.0, L=0, sigma=0, ell=0)

    def test_bad_word_size_rejected(self):
        with pytest.raises(ModelError):
            ModelParams(machine="x", P=4, g=1.0, L=0, sigma=0, ell=0, w=0)

    def test_frozen(self):
        p = paper_params("cm5")
        with pytest.raises(Exception):
            p.g = 10  # type: ignore[misc]


class TestUnbalancedCost:
    def test_paper_maspar_law_full_machine(self):
        # T_unb(1024) ~= 1311 us ~= the measured ~1300 us 1-relation (§5.1).
        unb = PAPER_UNBALANCED["maspar"]
        assert unb(1024) == pytest.approx(0.84 * 1024 + 11.8 * 32 + 73.3)
        assert 1250 < unb(1024) < 1350

    def test_paper_32_active_is_about_13_percent(self):
        # §3.1: "when there are 32 active PEs, a partial permutation takes
        # about 13% of the time required by a full permutation."
        unb = PAPER_UNBALANCED["maspar"]
        assert unb(32) / unb(1024) == pytest.approx(0.13, abs=0.02)

    def test_zero_active_is_free(self):
        assert UnbalancedCost(1, 1, 1)(0) == 0.0

    def test_negative_active_rejected(self):
        with pytest.raises(ModelError):
            UnbalancedCost(1, 1, 1)(-1)

    def test_monotone_in_active(self):
        unb = PAPER_UNBALANCED["maspar"]
        values = [unb(x) for x in (1, 2, 16, 64, 256, 1024)]
        assert values == sorted(values)

    def test_as_tuple(self):
        assert UnbalancedCost(1.0, 2.0, 3.0).as_tuple() == (1.0, 2.0, 3.0)
