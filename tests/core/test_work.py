"""Tests for work descriptors and their nominal pricing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ModelError
from repro.core.params import paper_params
from repro.core.work import (
    Compare,
    Copy,
    Flops,
    Generic,
    MatmulBlock,
    Merge,
    RadixSort,
    nominal_time,
)

CM5 = paper_params("cm5")


class TestDescriptors:
    def test_flops_nominal(self):
        assert nominal_time(Flops(1000), CM5) == pytest.approx(1000 * CM5.alpha)

    def test_matmul_block_flops(self):
        blk = MatmulBlock(4, 5, 6)
        assert blk.flops == 120
        assert nominal_time(blk, CM5) == pytest.approx(120 * CM5.alpha)

    def test_matmul_working_set(self):
        blk = MatmulBlock(10, 10, 10)
        assert blk.working_set_bytes == 8 * 300

    def test_radix_sort_follows_paper_law(self):
        # (b/r)(beta 2^r + gamma n), paper §4.2.1
        w = RadixSort(n=4096, bits=32, radix_bits=8)
        expected = 4 * (CM5.sort_beta * 256 + CM5.sort_gamma * 4096)
        assert nominal_time(w, CM5) == pytest.approx(expected)

    def test_radix_sort_passes_ceil(self):
        assert RadixSort(n=10, bits=32, radix_bits=8).passes == 4
        assert RadixSort(n=10, bits=33, radix_bits=8).passes == 5

    def test_merge_linear(self):
        assert nominal_time(Merge(100), CM5) == pytest.approx(100 * CM5.merge_alpha)

    def test_copy_uses_beta(self):
        assert nominal_time(Copy(64), CM5) == pytest.approx(64 * CM5.beta_copy)

    def test_generic_is_identity(self):
        assert nominal_time(Generic(12.5), CM5) == 12.5

    def test_compare_priced(self):
        assert nominal_time(Compare(10), CM5) > 0


class TestValidation:
    @pytest.mark.parametrize("bad", [
        lambda: Flops(-1),
        lambda: MatmulBlock(-1, 2, 3),
        lambda: RadixSort(-5),
        lambda: RadixSort(5, bits=0),
        lambda: RadixSort(5, bits=8, radix_bits=16),
        lambda: Merge(-1),
        lambda: Copy(-1),
        lambda: Generic(-0.1),
        lambda: Compare(-2),
    ])
    def test_negative_rejected(self, bad):
        with pytest.raises(ModelError):
            bad()

    def test_unknown_work_type_rejected(self):
        class Strange:
            pass

        with pytest.raises(ModelError):
            nominal_time(Strange(), CM5)  # type: ignore[arg-type]


class TestProperties:
    @given(n=st.integers(min_value=0, max_value=10**7))
    def test_flops_nominal_nonnegative_and_linear(self, n):
        t = nominal_time(Flops(n), CM5)
        assert t >= 0
        assert t == pytest.approx(n * CM5.alpha)

    @given(m=st.integers(0, 64), k=st.integers(0, 64), n=st.integers(0, 64))
    def test_matmul_flops_product(self, m, k, n):
        assert MatmulBlock(m, k, n).flops == m * k * n

    @given(n=st.integers(0, 10**6),
           bits=st.sampled_from([16, 32, 64]),
           radix=st.sampled_from([4, 8, 11, 16]))
    def test_radix_monotone_in_n(self, n, bits, radix):
        t1 = nominal_time(RadixSort(n, bits=bits, radix_bits=radix), CM5)
        t2 = nominal_time(RadixSort(n + 1, bits=bits, radix_bits=radix), CM5)
        assert t2 >= t1
