"""Tests for the cross-model accuracy scoreboard."""

import pytest

from repro.validation.scoreboard import Cell, Scoreboard, build_scoreboard, render_scoreboard


@pytest.fixture(scope="module")
def board():
    return build_scoreboard(scale=0.3, seed=1)


class TestCell:
    def test_signed_error(self):
        c = Cell("w", "m", "bsp", measured_us=100.0, predicted_us=150.0)
        assert c.error == pytest.approx(0.5)
        c2 = Cell("w", "m", "bsp", measured_us=100.0, predicted_us=50.0)
        assert c2.error == pytest.approx(-0.5)


class TestScoreboard:
    def test_models_present(self, board):
        models = board.models()
        for name in ("pram", "bsp", "mp-bsp", "mp-bpram", "loggp", "bsf"):
            assert name in models
        assert "e-bsp" in models  # the MasPar row brings it in

    def test_rows_cover_matrix(self, board):
        rows = board.rows()
        assert ("matmul", "cm5") in rows
        assert ("bitonic-blk", "gcel") in rows
        assert ("radix", "modern") in rows
        assert len(rows) == 6

    def test_error_lookup(self, board):
        err = board.error("matmul", "cm5", "bsp")
        assert err is not None and abs(err) < 0.4

    def test_missing_cell_is_none(self, board):
        assert board.error("matmul", "cm5", "e-bsp") is None

    def test_pram_always_underestimates(self, board):
        for cell in board.cells:
            if cell.model == "pram":
                assert cell.error < 0

    def test_fine_grain_model_explodes_on_block_gcel(self, board):
        # the paper's factor-~100 observation, as a scoreboard cell
        err = board.error("bitonic-blk", "gcel", "bsp")
        assert err is not None and err > 10

    def test_bpram_accurate_on_its_home_turf(self, board):
        err = board.error("bitonic-blk", "gcel", "mp-bpram")
        assert err is not None and abs(err) < 0.10

    def test_worst_model_serialises_everything(self, board):
        # BSF relays every transfer through a master: applied to the
        # direct-network machines it out-errs even the fine-grain models
        assert board.worst_model() == "bsf"

    def test_fine_grain_models_still_beat_no_model_at_all(self, board):
        # the pre-BSF observation survives among the direct-network
        # models: MP-BSP on a block-transfer machine overcharges more
        # than PRAM's ignore-communication baseline
        import numpy as np
        means = {m: np.mean([abs(c.error) for c in board.cells
                             if c.model == m])
                 for m in ("pram", "mp-bsp")}
        assert means["mp-bsp"] > means["pram"]


class TestRendering:
    def test_table_contains_all_models(self, board):
        text = render_scoreboard(board)
        for name in board.models():
            assert name in text
        assert "least faithful" in text
        assert "-" in text  # the missing e-bsp cells
