"""Tests for experiment result containers and error statistics."""

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.validation.compare import (
    max_abs_relative_error,
    mean_relative_error,
    overestimation_factor,
    relative_errors,
)
from repro.validation.series import Check, ExperimentResult, Series


class TestSeries:
    def test_alignment_enforced(self):
        with pytest.raises(ExperimentError):
            Series("a", [1, 2], [1])

    def test_at(self):
        s = Series("a", [1, 2, 4], [10, 20, 40])
        assert s.at(2) == 20

    def test_at_missing(self):
        with pytest.raises(ExperimentError):
            Series("a", [1, 2], [1, 2]).at(3)


class TestExperimentResult:
    def _result(self):
        r = ExperimentResult(experiment="x", title="t", x_label="x",
                             y_label="y")
        r.series.append(Series("m", [1, 2], [1, 2]))
        return r

    def test_get_by_name(self):
        r = self._result()
        assert r.get("m").name == "m"
        with pytest.raises(ExperimentError, match="no series"):
            r.get("nope")

    def test_checks_and_passed(self):
        r = self._result()
        r.check("ok", True, "fine")
        assert r.passed
        r.check("bad", False, "oops")
        assert not r.passed
        assert "FAIL" in str(r.checks[1])

    def test_check_coerces_numpy_bool(self):
        r = self._result()
        c = r.check("np", np.bool_(True))
        assert c.passed is True


class TestCompare:
    def test_relative_errors_sign(self):
        m = Series("measured", [1, 2], [100, 100])
        p = Series("pred", [1, 2], [110, 90])
        errs = relative_errors(m, p)
        assert errs[0] == pytest.approx(0.10)
        assert errs[1] == pytest.approx(-0.10)

    def test_max_and_mean(self):
        m = Series("measured", [1, 2], [100, 100])
        p = Series("pred", [1, 2], [150, 100])
        assert max_abs_relative_error(m, p) == pytest.approx(0.5)
        assert mean_relative_error(m, p) == pytest.approx(0.25)

    def test_overestimation_factor(self):
        m = Series("measured", [1, 2], [100, 200])
        p = Series("pred", [1, 2], [200, 400])
        assert overestimation_factor(m, p) == pytest.approx(2.0)

    def test_grid_mismatch_rejected(self):
        m = Series("measured", [1, 2], [1, 2])
        p = Series("pred", [1, 3], [1, 2])
        with pytest.raises(ExperimentError):
            relative_errors(m, p)

    def test_nonpositive_measured_rejected(self):
        m = Series("measured", [1], [0])
        p = Series("pred", [1], [1])
        with pytest.raises(ExperimentError):
            relative_errors(m, p)
