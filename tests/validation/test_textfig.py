"""Tests for the text rendering of figures."""

from repro.validation.series import ExperimentResult, Series
from repro.validation.textfig import render_ascii_plot, render_result, render_table


def sample_result():
    r = ExperimentResult(experiment="figX", title="Demo figure",
                         x_label="N", y_label="time (us)")
    r.series.append(Series("measured", [1, 2, 4], [10.0, 20.5, 41.0]))
    r.series.append(Series("predicted", [1, 2, 4], [11.0, 22.0, 44.0]))
    r.check("demo claim", True, "all good")
    r.notes.append("just a note")
    return r


class TestRenderTable:
    def test_columns_present(self):
        text = render_table(sample_result())
        assert "measured" in text and "predicted" in text
        assert "20.5" in text

    def test_empty(self):
        r = ExperimentResult(experiment="e", title="t", x_label="x",
                             y_label="y")
        assert "no series" in render_table(r)


class TestRenderPlot:
    def test_plot_draws_markers(self):
        text = render_ascii_plot(sample_result())
        assert "*" in text and "+" in text
        assert "Demo figure" in text

    def test_log_scale_label(self):
        r = sample_result()
        r.series[0] = Series("measured", [1, 2, 4], [1.0, 100.0, 10000.0])
        text = render_ascii_plot(r, logy=True)
        assert "log10" in text

    def test_flat_series_does_not_crash(self):
        r = ExperimentResult(experiment="e", title="t", x_label="x",
                             y_label="y")
        r.series.append(Series("const", [1, 1], [5, 5]))
        assert render_ascii_plot(r)


class TestRenderResult:
    def test_full_report(self):
        text = render_result(sample_result())
        assert "figX" in text
        assert "[PASS] demo claim" in text
        assert "just a note" in text

    def test_no_plot(self):
        text = render_result(sample_result(), plot=False)
        assert "time (us)" not in text.split("Checks")[0].split("\n")[0]
