"""Tests for per-superstep error attribution and trace profiling."""

import numpy as np
import pytest

from repro.algorithms import apsp, matmul
from repro.core import BSP, paper_params
from repro.core.errors import TraceError
from repro.core.relations import CommPhase
from repro.core.trace import Superstep, Trace
from repro.machines import CM5, GCel
from repro.validation.attribution import (
    _family,
    attribute_error,
    render_attribution,
    time_by_label,
)


class TestFamily:
    @pytest.mark.parametrize("label,family", [
        ("col-scatter-17", "col-scatter"),
        ("r3-allgather", "r-allgather"),
        ("c0-scatter", "c-scatter"),
        ("merge-2.1", "merge"),
        ("halo-9", "halo"),
        ("replicate", "replicate"),
        ("", "(unlabelled)"),
        ("123", "(numeric)"),
    ])
    def test_collapsing(self, label, family):
        assert _family(label) == family


class TestTimeByLabel:
    def test_aggregates_iterations(self, cm5):
        res = apsp.run(cm5, 16, P=16, seed=0)
        profile = time_by_label(res.trace)
        assert "c-scatter" in profile and "r-allgather" in profile
        assert sum(profile.values()) == pytest.approx(res.time_us, rel=1e-6)

    def test_sorted_descending(self, cm5):
        res = matmul.run(cm5, 32, variant="bsp-staggered", seed=0)
        values = list(time_by_label(res.trace).values())
        assert values == sorted(values, reverse=True)

    def test_unsimulated_trace_rejected(self):
        tr = Trace(P=4)
        tr.append(Superstep(phase=CommPhase.empty(4)))
        with pytest.raises(TraceError):
            time_by_label(tr)


class TestAttribution:
    def test_apsp_error_lands_on_the_scatter(self):
        """The paper's Fig. 13 diagnosis, mechanised."""
        machine = GCel(seed=5)
        res = apsp.run(machine, 32, seed=5)
        rows = attribute_error(res.trace, BSP(paper_params("gcel")))
        scatter = [r for r in rows if r.label.endswith("-scatter")]
        allgather = [r for r in rows if r.label.endswith("-allgather")]
        assert all(r.error > 1.0 for r in scatter)      # grossly overpriced
        assert all(abs(r.error) < 0.15 for r in allgather)  # priced fairly
        # and the scatter rows top the ranking
        assert rows[0].label.endswith("-scatter")

    def test_totals_match_plain_pricing(self, cm5):
        res = matmul.run(cm5, 32, variant="bsp-staggered", seed=1)
        model = BSP(paper_params("cm5"))
        rows = attribute_error(res.trace, model)
        assert sum(r.predicted_us for r in rows) == pytest.approx(
            model.trace_cost(res.trace))
        assert sum(r.measured_us for r in rows) == pytest.approx(
            res.time_us, rel=1e-6)

    def test_gap_sign_convention(self):
        machine = CM5(seed=2)
        res = matmul.run(machine, 128, variant="bsp", seed=2)  # unstaggered
        rows = attribute_error(res.trace, BSP(paper_params("cm5")))
        comm = [r for r in rows if r.label in ("replicate",
                                               "exchange-partials")]
        assert comm and all(r.gap_us < 0 for r in comm)  # underestimated


class TestRendering:
    def test_table_shows_total(self, cm5):
        res = matmul.run(cm5, 32, variant="bsp-staggered", seed=0)
        text = render_attribution(
            attribute_error(res.trace, BSP(paper_params("cm5"))))
        assert "total" in text and "gap" in text
        assert "replicate" in text

    def test_top_limits_rows(self, cm5):
        res = apsp.run(cm5, 16, P=16, seed=0)
        rows = attribute_error(res.trace, BSP(paper_params("cm5")))
        text = render_attribution(rows, top=2)
        body = [ln for ln in text.splitlines()
                if ln and not ln.startswith(("Model", "superstep", "-",
                                             "total"))]
        assert len(body) == 2
