"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig14"])
        assert args.ids == ["fig14"]
        assert args.scale == 1.0
        assert args.seed == 0

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table1" in out and "abl-sync" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "MasParMP1" in out and "GCel" in out and "CM5" in out

    def test_run_small_experiment(self, capsys):
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        out = capsys.readouterr().out
        assert "fig14" in out and "PASS" in out
        assert code == 0

    def test_run_with_plot(self, capsys):
        main(["run", "fig14", "--scale", "0.3"])
        out = capsys.readouterr().out
        assert "x:" in out  # plot footer

    def test_run_unknown_experiment(self, capsys):
        code = main(["run", "fig99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        # the error names every valid id instead of dumping a traceback
        assert "fig14" in err and "table1" in err and "abl-sync" in err

    def test_run_without_ids(self, capsys):
        code = main(["run"])
        assert code == 2
        assert "no experiment ids" in capsys.readouterr().err

    def test_run_reports_cache_outcomes(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        assert "cache: 0 hit(s), 1 miss(es)" in capsys.readouterr().out
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        assert code == 0
        assert "cache: 1 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_run_no_cache_flag(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot", "--no-cache"])
        out = capsys.readouterr().out
        assert "cache:" not in out
        # nothing was stored either
        main(["cache", "info"])
        assert "0 cached result(s)" in capsys.readouterr().out

    def test_cache_info_and_clear(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "1 cached result(s)" in out and "fig14" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cached result(s)" in capsys.readouterr().out
        main(["cache", "info"])
        assert "0 cached result(s)" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        assert main(["table1", "--trials", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "T_unb" in out and "g_mscat" in out


class TestJsonExport:
    def test_run_writes_json(self, tmp_path, capsys):
        out = tmp_path / "res.json"
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot",
                     "--json", str(out)])
        assert code == 0
        import json

        data = json.loads(out.read_text())
        assert data["scale"] == 0.3
        assert data["results"][0]["experiment"] == "fig14"
        assert data["results"][0]["passed"] is True


class TestRoundtrip:
    def test_result_dict_roundtrip(self):
        from repro.experiments import get
        from repro.validation.series import ExperimentResult

        res = get("fig14").run(scale=0.3, seed=0)
        clone = ExperimentResult.from_dict(res.to_dict())
        assert clone.experiment == res.experiment
        assert clone.passed == res.passed
        assert [s.name for s in clone.series] == [s.name for s in res.series]
        assert (clone.series[0].ys == res.series[0].ys).all()


class TestAttributeCommand:
    @pytest.mark.parametrize("workload,machine,model", [
        ("apsp", "gcel", "bsp"),
        ("bitonic-blk", "gcel", "mp-bpram"),
        ("matmul-naive", "cm5", "bsp"),
        ("stencil", "t800", "bsp"),
    ])
    def test_runs_and_reports(self, capsys, workload, machine, model):
        code = main(["attribute", "--machine", machine, "--workload",
                     workload, "--model", model, "--size", "32",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Model-error attribution" in out
        assert "total" in out

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["attribute", "--workload", "quantum-sort"])
