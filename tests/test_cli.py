"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.fast


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig14"])
        assert args.ids == ["fig14"]
        assert args.scale == 1.0
        assert args.seed == 0

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table1" in out and "abl-sync" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "MasParMP1" in out and "GCel" in out and "CM5" in out

    def test_run_small_experiment(self, capsys):
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        out = capsys.readouterr().out
        assert "fig14" in out and "PASS" in out
        assert code == 0

    def test_run_with_plot(self, capsys):
        main(["run", "fig14", "--scale", "0.3"])
        out = capsys.readouterr().out
        assert "x:" in out  # plot footer

    def test_run_unknown_experiment(self, capsys):
        code = main(["run", "fig99"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        # the error names every valid id instead of dumping a traceback
        assert "fig14" in err and "table1" in err and "abl-sync" in err

    def test_run_without_ids(self, capsys):
        code = main(["run"])
        assert code == 2
        assert "no experiment ids" in capsys.readouterr().err

    def test_run_reports_cache_outcomes(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        assert "cache: 0 hit(s), 1 miss(es)" in capsys.readouterr().out
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        assert code == 0
        assert "cache: 1 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_run_no_cache_flag(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot", "--no-cache"])
        out = capsys.readouterr().out
        assert "cache:" not in out
        # nothing was stored either
        main(["cache", "info"])
        assert "0 cached result(s)" in capsys.readouterr().out

    def test_cache_info_and_clear(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "1 cached result(s)" in out and "fig14" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cached result(s)" in capsys.readouterr().out
        main(["cache", "info"])
        assert "0 cached result(s)" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        assert main(["table1", "--trials", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "T_unb" in out and "g_mscat" in out


class TestJsonExport:
    def test_run_writes_json(self, tmp_path, capsys):
        out = tmp_path / "res.json"
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot",
                     "--json", str(out)])
        assert code == 0
        import json

        data = json.loads(out.read_text())
        assert data["scale"] == 0.3
        assert data["results"][0]["experiment"] == "fig14"
        assert data["results"][0]["passed"] is True


class TestRoundtrip:
    def test_result_dict_roundtrip(self):
        from repro.experiments import get
        from repro.validation.series import ExperimentResult

        res = get("fig14").run(scale=0.3, seed=0)
        clone = ExperimentResult.from_dict(res.to_dict())
        assert clone.experiment == res.experiment
        assert clone.passed == res.passed
        assert [s.name for s in clone.series] == [s.name for s in res.series]
        assert (clone.series[0].ys == res.series[0].ys).all()


class TestVersion:
    def test_version_string_names_the_package(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit):
            main(["--version"])
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_fallback_matches_pyproject(self):
        """The uninstalled fallback literal must track pyproject.toml."""
        import re
        from pathlib import Path

        from repro import __version__

        text = (Path(__file__).resolve().parents[1]
                / "pyproject.toml").read_text()
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.M)
        assert match is not None
        assert match.group(1) == __version__


class TestJsonOutputs:
    def test_machines_json(self, capsys):
        assert main(["machines", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in doc["machines"]}
        assert {"maspar", "gcel", "cm5", "t800", "modern"} <= names
        maspar = next(m for m in doc["machines"] if m["name"] == "maspar")
        assert maspar["simd"] is True and maspar["default_P"] == 1024

    def test_cache_info_json(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        capsys.readouterr()
        assert main(["cache", "info", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["entries"][0]["experiment"] == "fig14"
        assert "root" in doc


class TestBenchCompare:
    @staticmethod
    def _trajectory(path, runs):
        path.write_text(json.dumps({"runs": runs}))
        return str(path)

    def test_regression_exits_3(self, tmp_path, capsys):
        out = self._trajectory(tmp_path / "traj.json", [
            {"label": "before", "total_s": 1.0,
             "experiments": {"fig14": 1.0}},
            {"label": "after", "total_s": 2.0,
             "experiments": {"fig14": 2.0}},
        ])
        assert main(["bench", "--compare", "--out", out]) == 3
        captured = capsys.readouterr()
        assert "regression: fig14" in captured.err
        assert "before" in captured.out and "after" in captured.out

    def test_speedup_exits_0(self, tmp_path, capsys):
        out = self._trajectory(tmp_path / "traj.json", [
            {"label": "before", "total_s": 2.0,
             "experiments": {"fig14": 2.0}},
            {"label": "after", "total_s": 1.0,
             "experiments": {"fig14": 1.0}},
        ])
        assert main(["bench", "--compare", "--out", out]) == 0
        assert "2.00x" in capsys.readouterr().out

    def test_service_records_are_skipped(self, tmp_path, capsys):
        # a loadtest record between two bench runs must not break the diff
        out = self._trajectory(tmp_path / "traj.json", [
            {"label": "before", "total_s": 2.0,
             "experiments": {"fig14": 2.0}},
            {"kind": "service", "label": "loadtest", "rps": 4000.0},
            {"label": "after", "total_s": 1.0,
             "experiments": {"fig14": 1.0}},
        ])
        assert main(["bench", "--compare", "--out", out]) == 0
        assert "before" in capsys.readouterr().out

    def test_too_few_comparable_runs_exits_2(self, tmp_path, capsys):
        out = self._trajectory(tmp_path / "traj.json", [
            {"label": "only", "total_s": 1.0, "experiments": {"fig14": 1.0}},
            {"kind": "service", "label": "loadtest", "rps": 4000.0},
        ])
        assert main(["bench", "--compare", "--out", out]) == 2
        assert "needs two" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "--compare", "--out", missing]) == 2
        assert "no trajectory file" in capsys.readouterr().err


class TestServeLoadtestArguments:
    @pytest.mark.parametrize("argv", [
        ["serve", "--port", "99999"],
        ["serve", "--port", "abc"],
        ["serve", "--workers", "0"],
        ["serve", "--window-ms", "-1"],
        ["serve", "--max-batch", "0"],
        ["serve", "--lru-size", "0"],
        ["loadtest", "--concurrency", "0"],
        ["loadtest", "--duration", "0"],
        ["loadtest", "--port", "-1"],
        ["loadtest", "--mix", "1:2"],
        ["loadtest", "--mix", "0:0:0"],
        ["loadtest", "--mix", "a:b:c"],
    ])
    def test_bad_arguments_exit_2(self, argv):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(argv)
        assert exc_info.value.code == 2

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 2
        assert args.window_ms == 2.0
        assert args.max_batch == 256
        assert not args.no_warm

    def test_loadtest_mix_is_parsed(self):
        args = build_parser().parse_args(["loadtest", "--mix", "4:2:1"])
        assert args.mix == (4, 2, 1)

    def test_loadtest_without_server_exits_2(self, capsys):
        code = main(["loadtest", "--port", "1", "--concurrency", "1",
                     "--duration", "0.1", "--no-record"])
        assert code == 2
        assert "repro serve" in capsys.readouterr().err


class TestAttributeCommand:
    @pytest.mark.parametrize("workload,machine,model", [
        ("apsp", "gcel", "bsp"),
        ("bitonic-blk", "gcel", "mp-bpram"),
        ("matmul-naive", "cm5", "bsp"),
        ("stencil", "t800", "bsp"),
        ("radix", "modern", "bsf"),
        ("radix", "gcel", "mp-bpram"),
    ])
    def test_runs_and_reports(self, capsys, workload, machine, model):
        code = main(["attribute", "--machine", machine, "--workload",
                     workload, "--model", model, "--size", "32",
                     "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Model-error attribution" in out
        assert "total" in out
        # the BSF scalability bound is a first-class prediction
        assert ("P_max" in out) == (model == "bsf")

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["attribute", "--workload", "quantum-sort"])


class TestAblateCommand:
    ARGS = ["ablate", "--components", "sync-loss", "--cells", "apsp",
            "--scale", "0.3", "--no-cache"]

    def test_defaults(self):
        args = build_parser().parse_args(["ablate"])
        assert args.components is None and args.cells is None
        assert args.scale == 0.3 and args.seed == 0 and args.jobs == 1
        assert not args.no_cache and not args.force

    def test_renders_ranking_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Component importance" in out
        assert "sync-loss" in out and "gcel" in out
        assert "cells: apsp" in out

    def test_json_to_stdout_is_the_report(self, capsys):
        assert main(self.ARGS + ["--json", "-"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-ablation-report/1"
        assert report["components"] == ["sync-loss"]
        assert report["cells"] == ["apsp"]
        assert {e["component"] for e in report["ranking"]} == {"sync-loss"}

    def test_json_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(self.ARGS + ["--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert "Component importance" in out  # table still printed
        assert json.loads(path.read_text())["schema"] \
            == "repro-ablation-report/1"

    def test_unknown_component_exits_2(self, capsys):
        code = main(["ablate", "--components", "quantum-noise",
                     "--no-cache"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown component 'quantum-noise'" in err
        assert "sync-loss" in err  # the error lists the catalog

    def test_malformed_fault_plan_exits_2(self, capsys):
        code = main(self.ARGS + ["--faults", "no-such-point"])
        assert code == 2
        assert "no-such-point" in capsys.readouterr().err

    def test_cache_makes_second_run_identical(self, tmp_path, capsys):
        args = ["ablate", "--components", "sync-loss", "--cells", "apsp",
                "--scale", "0.3", "--cache-dir", str(tmp_path), "--json",
                "-"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestFleetArguments:
    def test_serve_fleet_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.processes == 1
        assert args.arena_slots == 1024
        assert args.arena_slot_kb == 32

    def test_serve_fleet_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--processes", "4", "--arena-slots", "256",
             "--arena-slot-kb", "64"])
        assert args.processes == 4
        assert args.arena_slots == 256
        assert args.arena_slot_kb == 64

    @pytest.mark.parametrize("argv", [
        ["serve", "--processes", "0"],
        ["serve", "--processes", "-2"],
        ["serve", "--arena-slots", "0"],
        ["serve", "--arena-slot-kb", "0"],
    ])
    def test_non_positive_fleet_values_rejected(self, argv, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        assert "must be >= 1" in capsys.readouterr().err

    def test_bench_service_flag_parses(self):
        args = build_parser().parse_args(["bench", "--compare", "--service"])
        assert args.service is True and args.compare is True


class TestEngineFlag:
    @pytest.mark.parametrize("argv", [
        ["run", "fig14", "--engine", "turbo"],
        ["serve", "--engine", "turbo"],
        ["ablate", "--engine", "turbo"],
    ])
    def test_unknown_engine_exits_2_listing_valid(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        for name in ("auto", "generator", "vector", "ir"):
            assert name in err

    @pytest.mark.parametrize("engine", ["auto", "generator", "vector", "ir"])
    def test_run_accepts_every_engine(self, engine, capsys):
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot",
                     "--no-cache", "--engine", engine])
        assert code == 0
        assert "fig14" in capsys.readouterr().out

    def test_engine_flag_defaults_to_ambient(self):
        args = build_parser().parse_args(["run", "fig14"])
        assert args.engine is None
        args = build_parser().parse_args(["serve"])
        assert args.engine == "auto"
        args = build_parser().parse_args(["ablate"])
        assert args.engine == "auto"

    def test_cache_clear_reports_step_programs(self, capsys):
        main(["run", "fig14", "--scale", "0.3", "--no-plot"])
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "step program(s)" in out
