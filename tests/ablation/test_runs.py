"""Run-matrix properties: ID stability, permutation invariance, pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ablation import (AblateRequest, canonical_disabled, cell_run_id,
                            resolve_cells, resolve_components, run_matrix)
from repro.ablation.components import COMPONENTS
from repro.ablation.runs import BASELINE
from repro.validation.scoreboard import CELL_SPECS

pytestmark = pytest.mark.fast

component_names = st.sampled_from(sorted(COMPONENTS))
cell_names = st.sampled_from(sorted(CELL_SPECS))


def matrix_ids(components, cells, *, scale=0.3, seed=0, fp="fp"):
    runs = run_matrix(resolve_components(components), resolve_cells(cells),
                      scale=scale, seed=seed, fingerprint=fp)
    return {run.run_id for run in runs}


class TestRunIds:
    @given(st.lists(component_names, min_size=1, max_size=8),
           st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_run_id_invariant_under_disable_permutation(self, names, rnd):
        shuffled = list(names)
        rnd.shuffle(shuffled)
        ref = cell_run_id("apsp", names, scale=0.3, seed=0, fingerprint="f")
        assert cell_run_id("apsp", shuffled, scale=0.3, seed=0,
                           fingerprint="f") == ref
        # ...and under duplication: the set is what is hashed
        assert cell_run_id("apsp", list(names) + [names[0]], scale=0.3,
                           seed=0, fingerprint="f") == ref

    @given(st.lists(component_names, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_canonical_disabled_is_sorted_and_unique(self, names):
        canon = canonical_disabled(names)
        assert list(canon) == sorted(set(names))
        assert canonical_disabled(canon) == canon

    def test_run_id_depends_on_every_identity_field(self):
        base = dict(scale=0.3, seed=0, fingerprint="f")
        ref = cell_run_id("apsp", ("sync-loss",), **base)
        assert cell_run_id("bitonic", ("sync-loss",), **base) != ref
        assert cell_run_id("apsp", (), **base) != ref
        assert cell_run_id("apsp", ("sync-loss",), scale=0.4, seed=0,
                           fingerprint="f") != ref
        assert cell_run_id("apsp", ("sync-loss",), scale=0.3, seed=1,
                           fingerprint="f") != ref
        assert cell_run_id("apsp", ("sync-loss",), scale=0.3, seed=0,
                           fingerprint="g") != ref


class TestMatrix:
    @given(st.lists(component_names, min_size=1, max_size=8, unique=True),
           st.lists(cell_names, min_size=1, max_size=5, unique=True),
           st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_matrix_ids_invariant_under_list_permutation(self, comps,
                                                         cells, rnd):
        """The ISSUE's headline property: naming components or cells in
        a different order selects the *same* run IDs."""
        comps2, cells2 = list(comps), list(cells)
        rnd.shuffle(comps2)
        rnd.shuffle(cells2)
        assert matrix_ids(comps, cells) == matrix_ids(comps2, cells2)

    @given(st.lists(component_names, min_size=1, max_size=8, unique=True),
           st.lists(cell_names, min_size=1, max_size=5, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_matrix_is_pruned_to_same_machine_cells(self, comps, cells):
        runs = run_matrix(resolve_components(comps), resolve_cells(cells),
                          scale=0.3, seed=0, fingerprint="f")
        baseline = [r for r in runs if r.config == BASELINE]
        assert [r.cell for r in baseline] == resolve_cells(cells)
        for run in runs:
            if run.config == BASELINE:
                assert run.disable == ()
            else:
                assert run.disable == (run.config,)
                assert CELL_SPECS[run.cell].machine \
                    == COMPONENTS[run.config].machine

    def test_full_matrix_size_is_pruned(self):
        """8 components x 5 cells would be 45 runs dense; pruning leaves
        baseline (5) plus one run per (component, same-machine cell)."""
        runs = run_matrix(resolve_components(None), resolve_cells(None),
                          scale=0.3, seed=0, fingerprint="f")
        expected = len(CELL_SPECS) + sum(
            1 for c in COMPONENTS.values() for s in CELL_SPECS.values()
            if s.machine == c.machine)
        assert len(runs) == expected < (len(COMPONENTS) + 1) * len(CELL_SPECS)


class TestRequestKey:
    @given(st.lists(component_names, min_size=1, max_size=8),
           st.lists(cell_names, min_size=1, max_size=5),
           st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_key_invariant_under_permutation_and_duplication(self, comps,
                                                             cells, rnd):
        comps2, cells2 = list(comps) + [comps[0]], list(cells) + [cells[0]]
        rnd.shuffle(comps2)
        rnd.shuffle(cells2)
        a = AblateRequest(components=tuple(comps), cells=tuple(cells))
        b = AblateRequest(components=tuple(comps2), cells=tuple(cells2))
        assert a.key == b.key

    def test_key_excludes_execution_knobs(self):
        a = AblateRequest()
        b = AblateRequest(jobs=8, cache_dir="/tmp/x", use_cache=False,
                          force=True)
        assert a.key == b.key
