"""Golden ablation ranking + end-to-end determinism.

``tests/golden/ablate.json`` pins the full-matrix importance report at
(scale 0.3, seed 0) — ranking order, importance values, per-cell deltas,
everything, byte for byte.  Regenerate intentionally with
``PYTHONPATH=src python scripts/update_golden.py``.

The full-matrix tests re-run every scoreboard cell and are marked
``slow`` (CI's chaos job picks them up via ``-m "slow and not chaos"``);
the smoke subset keeps one single-component ablation in tier-1 and the
``fast`` pre-commit selection.
"""

import json
from pathlib import Path

import pytest

from repro.ablation import SCHEMA, AblateRequest, ablate

GOLDEN = Path(__file__).parents[1] / "golden" / "ablate.json"


def report_bytes(report: dict) -> bytes:
    return json.dumps(report, sort_keys=True).encode()


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN.read_text())


@pytest.mark.golden
@pytest.mark.slow
class TestGoldenRanking:
    def test_full_matrix_reproduces_golden_bytes(self, golden):
        fresh = ablate(AblateRequest(scale=golden["scale"],
                                     seed=golden["seed"], use_cache=False))
        assert report_bytes(fresh) == report_bytes(golden["report"]), (
            "ablation ranking diverged from tests/golden/ablate.json — if "
            "the change is intentional, rerun scripts/update_golden.py")

    def test_golden_ranking_is_complete_and_sorted(self, golden):
        report = golden["report"]
        assert report["schema"] == SCHEMA
        ranked = {e["component"] for e in report["ranking"]}
        skipped = {s["component"] for s in report["skipped"]}
        assert ranked | skipped == set(report["components"])
        mags = [abs(e["importance"]) for e in report["ranking"]]
        assert mags == sorted(mags, reverse=True)


@pytest.mark.slow
class TestEndToEndDeterminism:
    def test_serial_equals_parallel_equals_cached(self, tmp_path):
        """The acceptance criterion: two consecutive runs, a --jobs N
        run and a cache-hit run all produce the same bytes."""
        req = AblateRequest(scale=0.3, seed=0,
                            cache_dir=str(tmp_path / "cache"))
        first = ablate(req)
        cached = ablate(req)
        parallel = ablate(AblateRequest(scale=0.3, seed=0, jobs=4,
                                        use_cache=False))
        assert report_bytes(first) == report_bytes(cached) \
            == report_bytes(parallel)


@pytest.mark.fast
class TestSmokeSubset:
    def test_single_component_ablation_round_trips(self, tmp_path):
        """One component on one cell: schema, sign conventions, and
        fresh == cached bytes — the sub-second tier-1/pre-commit check."""
        req = AblateRequest(components=("sync-loss",), cells=("apsp",),
                            scale=0.3, seed=0,
                            cache_dir=str(tmp_path / "cache"))
        fresh = ablate(req)
        cached = ablate(req)
        assert report_bytes(fresh) == report_bytes(cached)
        assert fresh["schema"] == SCHEMA
        assert [e["component"] for e in fresh["ranking"]] == ["sync-loss"]
        entry = fresh["ranking"][0]
        assert entry["harmful"] == (entry["importance"] < 0)
        assert entry["importance"] == pytest.approx(
            entry["ablated_mean_abs_error"]
            - entry["baseline_mean_abs_error"])

    def test_component_with_no_selected_cells_is_skipped(self):
        report = ablate(AblateRequest(components=("cube-discount",),
                                      cells=("apsp",), scale=0.3, seed=0,
                                      use_cache=False))
        assert report["ranking"] == []
        assert [s["component"] for s in report["skipped"]] \
            == ["cube-discount"]
