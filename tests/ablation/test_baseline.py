"""Bit-identity anchors of the ablation harness.

Two properties make every importance number trustworthy:

* **all-ON is the scoreboard** — with nothing disabled, ``run_cell`` and
  the ablation baseline reproduce the un-ablated validation scoreboard
  byte for byte, so `importance` deltas are measured against the real
  thing, not a parallel implementation;
* **non-touch** — running ablated work for one machine perturbs no
  other cell's bytes (no shared RNG, memo or module state), which is
  what licenses the run-matrix pruning.
"""

import pytest

from repro.ablation.evaluate import _cell_doc
from repro.core.errors import SimulationError
from repro.machines import make_machine
from repro.validation.scoreboard import CELL_SPECS, build_scoreboard, \
    run_cell

SCALE, SEED = 0.3, 0


class TestAllPhenomenaOn:
    def test_baseline_reproduces_unablated_scoreboard(self):
        """disable=() is bit-identical to build_scoreboard, cell by cell."""
        board = build_scoreboard(scale=SCALE, seed=SEED)
        fresh = []
        for name in CELL_SPECS:
            fresh.extend(run_cell(name, scale=SCALE, seed=SEED, disable=()))
        assert [c.to_dict() for c in fresh] \
            == [c.to_dict() for c in board.cells]

    def test_ablated_run_differs_on_its_cell(self):
        base = _cell_doc("apsp", (), SCALE, SEED)
        ablated = _cell_doc("apsp", ("sync-loss",), SCALE, SEED)
        assert base != ablated
        assert base["disable"] == [] and ablated["disable"] == ["sync-loss"]


class TestNonTouch:
    def test_ablated_cm5_run_leaves_other_machines_untouched(self):
        """Cells the component provably does not touch keep their exact
        bytes even when ablated runs execute in the same process."""
        before = {cell: _cell_doc(cell, (), SCALE, SEED)
                  for cell in ("bitonic", "apsp")}
        _cell_doc("matmul", ("cache-effects", "endpoint-contention"),
                  SCALE, SEED)
        after = {cell: _cell_doc(cell, (), SCALE, SEED)
                 for cell in ("bitonic", "apsp")}
        assert before == after

    def test_foreign_phenomenon_is_rejected_not_ignored(self):
        """A disable that names another machine's phenomenon is an error
        — silently ignoring it would make the pruning unsound."""
        with pytest.raises(SimulationError, match="sync-loss"):
            run_cell("matmul", scale=SCALE, seed=SEED,
                     disable=("sync-loss",))


class TestAblatedCalibration:
    def test_unknown_phenomenon_rejected_at_construction(self):
        with pytest.raises(SimulationError, match="bogus"):
            make_machine("gcel", disable=("bogus",))

    def test_partial_permutation_ablation_drops_ebsp(self):
        """With the T_unb law off, the unbalanced fit becomes unphysical;
        the calibration degrades gracefully and the scoreboard simply
        loses E-BSP for that configuration instead of crashing."""
        base_models = {c.model for c in
                       run_cell("bitonic", scale=SCALE, seed=SEED)}
        abl_models = {c.model for c in
                      run_cell("bitonic", scale=SCALE, seed=SEED,
                               disable=("partial-permutation",))}
        assert "e-bsp" in base_models
        assert abl_models == base_models - {"e-bsp"}
