"""Component catalog: one entry per machine phenomenon, validated names."""

import pytest

from repro.ablation import COMPONENTS, resolve_cells, resolve_components
from repro.core.errors import AblationError
from repro.machines import MACHINES
from repro.validation.scoreboard import CELL_SPECS

pytestmark = pytest.mark.fast


class TestCatalog:
    def test_catalog_mirrors_machine_phenomena(self):
        """Every ``Machine.PHENOMENA`` name appears exactly once, tagged
        with its machine; nothing else is in the catalog."""
        expected = {}
        for mname, cls in MACHINES.items():
            for phen in cls.PHENOMENA:
                expected[phen] = mname
        assert {c.name: c.machine for c in COMPONENTS.values()} == expected

    def test_every_component_documents_its_paper_section(self):
        for comp in COMPONENTS.values():
            assert comp.paper.startswith("§"), comp.name
            assert comp.summary, comp.name

    def test_to_dict_round_trips_the_fields(self):
        comp = COMPONENTS["sync-loss"]
        assert comp.to_dict() == {
            "name": comp.name, "machine": comp.machine,
            "paper": comp.paper, "summary": comp.summary,
        }


class TestResolution:
    def test_none_selects_all_in_catalog_order(self):
        assert resolve_components(None) == list(COMPONENTS.values())
        assert resolve_cells(None) == list(CELL_SPECS)

    def test_selection_keeps_catalog_order_not_request_order(self):
        names = list(COMPONENTS)
        picked = [names[2], names[0]]
        assert [c.name for c in resolve_components(picked)] \
            == sorted(picked, key=names.index)

    def test_duplicates_collapse(self):
        assert resolve_cells(["apsp", "apsp"]) == ["apsp"]
        comps = resolve_components(["sync-loss", "sync-loss"])
        assert [c.name for c in comps] == ["sync-loss"]

    def test_unknown_component_names_the_known_set(self):
        with pytest.raises(AblationError, match="unknown component"):
            resolve_components(["bogus"])
        with pytest.raises(AblationError, match="sync-loss"):
            resolve_components(["bogus"])

    def test_unknown_cell_names_the_known_set(self):
        with pytest.raises(AblationError, match="unknown cell"):
            resolve_cells(["bogus"])
        with pytest.raises(AblationError, match="apsp"):
            resolve_cells(["bogus"])
