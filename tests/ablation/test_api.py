"""Request validation: every malformed ``POST /ablate`` body is a 422's
``AblationError`` here, never a traceback deeper in the stack."""

import pytest

from repro.ablation import AblateRequest, ablate
from repro.core.errors import AblationError

pytestmark = pytest.mark.fast


class TestFromJson:
    def test_defaults(self):
        req = AblateRequest.from_json({})
        assert req == AblateRequest()
        assert req.components is None and req.cells is None
        assert (req.scale, req.seed) == (0.3, 0)

    def test_explicit_selection(self):
        req = AblateRequest.from_json({
            "components": ["sync-loss"], "cells": ["apsp"],
            "scale": 0.5, "seed": 3})
        assert req.components == ("sync-loss",)
        assert req.cells == ("apsp",)
        assert (req.scale, req.seed) == (0.5, 3)

    @pytest.mark.parametrize("doc", [[], "x", 7, None])
    def test_non_object_body(self, doc):
        with pytest.raises(AblationError, match="JSON object"):
            AblateRequest.from_json(doc)

    @pytest.mark.parametrize("bad", [[], "sync-loss", [3], ["a", 3], {}])
    def test_malformed_name_lists(self, bad):
        with pytest.raises(AblationError, match="non-empty list"):
            AblateRequest.from_json({"components": bad})

    def test_unknown_names_fail_at_validation_time(self):
        with pytest.raises(AblationError, match="unknown component"):
            AblateRequest.from_json({"components": ["bogus"]})
        with pytest.raises(AblationError, match="unknown cell"):
            AblateRequest.from_json({"cells": ["bogus"]})

    @pytest.mark.parametrize("scale", [0, 0.0, -0.3, 1.5, "0.3", True,
                                       None])
    def test_bad_scale(self, scale):
        with pytest.raises(AblationError, match="scale"):
            AblateRequest.from_json({"scale": scale})

    @pytest.mark.parametrize("seed", [-1, 2 ** 31, 0.5, "0", True, None])
    def test_bad_seed(self, seed):
        with pytest.raises(AblationError, match="seed"):
            AblateRequest.from_json({"seed": seed})

    @pytest.mark.parametrize("engine", ["turbo", 3, None, ["ir"]])
    def test_bad_engine(self, engine):
        with pytest.raises(AblationError, match="engine"):
            AblateRequest.from_json({"engine": engine})

    def test_engine_accepted_but_not_in_key(self):
        # engines are observationally identical, so the cache key must
        # not fracture on the execution knob
        a = AblateRequest.from_json({"engine": "ir"})
        b = AblateRequest.from_json({"engine": "generator"})
        assert a.engine == "ir" and b.engine == "generator"
        assert a.key == b.key


class TestAblateEntry:
    def test_unknown_component_raises_before_any_run(self):
        with pytest.raises(AblationError, match="unknown component"):
            ablate(AblateRequest(components=("bogus",), use_cache=False))

    def test_bad_jobs_rejected(self):
        from repro.core.errors import ExperimentError
        with pytest.raises(ExperimentError, match="jobs"):
            ablate(AblateRequest(components=("sync-loss",),
                                 cells=("apsp",), jobs=0, use_cache=False))
