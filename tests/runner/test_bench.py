"""The perf-regression harness: budgets, trajectory file, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.core.errors import ExperimentError
from repro.runner.bench import (BenchRecord, QUICK_IDS, append_trajectory,
                                check_budgets, compare_last_runs,
                                compare_last_service_runs, parse_budgets,
                                render_bench, run_bench)
from repro.runner.profile import profile_path, profiled_run, render_profile

# the cheapest registered experiment — keeps these tests out of the
# slow lane while still exercising the real registry path
FAST_ID = "ext-t800"


class TestParseBudgets:
    def test_parses_seconds(self):
        assert parse_budgets(["fig5=60", "fig12=2.5"]) == \
            {"fig5": 60.0, "fig12": 2.5}

    def test_empty(self):
        assert parse_budgets([]) == {}

    @pytest.mark.parametrize("spec", ["fig5", "fig5=", "fig5=abc", "fig5=0",
                                      "fig5=-3"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ExperimentError, match="bad budget"):
            parse_budgets([spec])


class TestBenchRecord:
    def test_totals_and_slowest(self):
        rec = BenchRecord(label="x", scale=1.0, seed=0,
                          times_s={"a": 1.0, "b": 3.0, "c": 2.0})
        assert rec.total_s == pytest.approx(6.0)
        assert rec.slowest(2) == [("b", 3.0), ("c", 2.0)]

    def test_to_dict_round_trips_through_json(self):
        rec = BenchRecord(label="x", scale=0.5, seed=7,
                          times_s={"a": 1.23456}, errors={"b": "boom"})
        doc = json.loads(json.dumps(rec.to_dict()))
        assert doc["scale"] == 0.5
        assert doc["experiments"]["a"] == 1.2346
        assert doc["errors"] == {"b": "boom"}

    def test_environment_stamp(self):
        import os
        import platform

        import numpy as np

        doc = BenchRecord(label="", scale=1.0, seed=0).to_dict()
        assert doc["numpy"] == np.__version__
        assert doc["host"] == platform.node()
        assert doc["cpus"] == os.cpu_count()


class TestCheckBudgets:
    def test_within_budget(self):
        rec = BenchRecord(label="", scale=1.0, seed=0, times_s={"a": 1.0})
        assert check_budgets(rec, {"a": 2.0}) == []

    def test_exceeded(self):
        rec = BenchRecord(label="", scale=1.0, seed=0, times_s={"a": 3.0})
        (msg,) = check_budgets(rec, {"a": 2.0})
        assert "budget exceeded" in msg and "a" in msg

    def test_missing_experiment(self):
        rec = BenchRecord(label="", scale=1.0, seed=0)
        (msg,) = check_budgets(rec, {"a": 2.0})
        assert "not run" in msg

    def test_errored_experiment(self):
        rec = BenchRecord(label="", scale=1.0, seed=0,
                          times_s={"a": 0.1}, errors={"a": "boom"})
        (msg,) = check_budgets(rec, {"a": 2.0})
        assert "boom" in msg


class TestTrajectory:
    def test_creates_then_appends(self, tmp_path):
        out = tmp_path / "traj.json"
        rec = BenchRecord(label="first", scale=1.0, seed=0,
                          times_s={"a": 1.0})
        append_trajectory(rec, out)
        append_trajectory(rec, out)
        doc = json.loads(out.read_text())
        assert [r["label"] for r in doc["runs"]] == ["first", "first"]

    def test_recovers_from_corrupt_file(self, tmp_path):
        out = tmp_path / "traj.json"
        out.write_text("{not json")
        rec = BenchRecord(label="x", scale=1.0, seed=0)
        append_trajectory(rec, out)
        assert len(json.loads(out.read_text())["runs"]) == 1


class TestRunBench:
    def test_times_a_real_experiment(self):
        record = run_bench([FAST_ID], scale=0.3, seed=0, label="test")
        assert not record.errors
        assert record.times_s[FAST_ID] > 0

    def test_quick_ids_are_registered(self):
        from repro.experiments import get

        for exp_id in QUICK_IDS:
            assert get(exp_id) is not None

    def test_render_mentions_slowest(self):
        rec = BenchRecord(label="", scale=1.0, seed=0,
                          times_s={"a": 1.0, "b": 9.0})
        text = render_bench(rec, top=1)
        assert "total 10.0s" in text
        assert "b" in text and "90.0%" in text


class TestProfile:
    def test_profiled_run_dumps_pstats(self, tmp_path):
        result, path = profiled_run(FAST_ID, scale=0.3, seed=0,
                                    profile_dir=tmp_path)
        assert path == profile_path(tmp_path, FAST_ID, scale=0.3, seed=0)
        assert path.is_file() and path.stat().st_size > 0
        text = render_profile(path, top=5)
        assert "cumulative" in text


class TestBenchCli:
    def test_exit_zero_within_budget(self, tmp_path, capsys):
        out = tmp_path / "traj.json"
        code = main(["bench", FAST_ID, "--scale", "0.3",
                     "--out", str(out), "--budget", f"{FAST_ID}=300"])
        assert code == 0
        assert out.is_file()
        assert "slowest" in capsys.readouterr().out

    def test_exit_three_on_budget_violation(self, tmp_path, capsys):
        out = tmp_path / "traj.json"
        code = main(["bench", FAST_ID, "--scale", "0.3",
                     "--out", str(out), "--budget", f"{FAST_ID}=0.000001"])
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_quick_conflicts_with_ids(self, tmp_path, capsys):
        code = main(["bench", "--quick", FAST_ID,
                     "--out", str(tmp_path / "t.json")])
        assert code == 2
        assert "either --quick" in capsys.readouterr().err


def _trajectory(tmp_path, prev, last, labels=("old", "new")):
    out = tmp_path / "traj.json"
    out.write_text(json.dumps({"runs": [
        {"label": labels[0], "experiments": prev,
         "total_s": sum(prev.values())},
        {"label": labels[1], "experiments": last,
         "total_s": sum(last.values())},
    ]}))
    return out


class TestCompareLastRuns:
    def test_speedup_table(self, tmp_path):
        out = _trajectory(tmp_path, {"fig1": 4.0, "fig4": 1.0},
                          {"fig1": 2.0, "fig4": 1.0})
        table, regressions = compare_last_runs(out)
        assert regressions == []
        assert "| fig1 | 4.00 | 2.00 | 2.00x |" in table
        assert "| **total** | 5.00 | 3.00 | 1.67x |" in table
        assert "| experiment | old (s) | new (s) | speedup |" in table

    def test_regression_flagged_past_tolerance(self, tmp_path):
        out = _trajectory(tmp_path, {"fig1": 1.0}, {"fig1": 2.0})
        table, regressions = compare_last_runs(out, tolerance=0.25)
        (msg,) = regressions
        assert "fig1" in msg and "+100%" in msg
        assert "⚠" in table

    def test_tolerance_suppresses_flag(self, tmp_path):
        out = _trajectory(tmp_path, {"fig1": 1.0}, {"fig1": 2.0})
        _, regressions = compare_last_runs(out, tolerance=1.5)
        assert regressions == []

    def test_noise_floor_exempts_tiny_times(self, tmp_path):
        # 3x slower but under 0.2s absolute: host-timer noise, not flagged
        out = _trajectory(tmp_path, {"fig1": 0.05}, {"fig1": 0.15})
        _, regressions = compare_last_runs(out)
        assert regressions == []

    def test_one_sided_experiments_get_dash_rows(self, tmp_path):
        out = _trajectory(tmp_path, {"gone": 1.0}, {"added": 1.0})
        table, regressions = compare_last_runs(out)
        assert regressions == []
        assert "| gone | 1.00 | - | - |" in table
        assert "| added | - | 1.00 | - |" in table

    def test_needs_two_runs(self, tmp_path):
        out = tmp_path / "traj.json"
        out.write_text(json.dumps({"runs": [{"experiments": {}}]}))
        with pytest.raises(ExperimentError, match="needs two"):
            compare_last_runs(out)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no trajectory"):
            compare_last_runs(tmp_path / "nope.json")

    def test_negative_tolerance_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="tolerance"):
            compare_last_runs(tmp_path / "t.json", tolerance=-0.1)


class TestCompareCli:
    def test_exit_zero_and_table_on_stdout(self, tmp_path, capsys):
        out = _trajectory(tmp_path, {"fig1": 2.0}, {"fig1": 1.0})
        code = main(["bench", "--compare", "--out", str(out)])
        assert code == 0
        assert "| fig1 | 2.00 | 1.00 | 2.00x |" in capsys.readouterr().out

    def test_exit_three_on_regression(self, tmp_path, capsys):
        out = _trajectory(tmp_path, {"fig1": 1.0}, {"fig1": 2.0})
        code = main(["bench", "--compare", "--out", str(out)])
        assert code == 3
        assert "regression" in capsys.readouterr().err

    def test_custom_tolerance(self, tmp_path, capsys):
        out = _trajectory(tmp_path, {"fig1": 1.0}, {"fig1": 2.0})
        code = main(["bench", "--compare", "--tolerance", "1.5",
                     "--out", str(out)])
        assert code == 0

    def test_compare_without_file_exits_two(self, tmp_path, capsys):
        code = main(["bench", "--compare",
                     "--out", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no trajectory" in capsys.readouterr().err


def _service_run(label, *, rps, p95=10.0, processes=2, concurrency=16,
                 mix="8:1:1", **extra):
    run = {"kind": "service", "label": label, "rps": rps, "p50_ms": 1.0,
           "p95_ms": p95, "p99_ms": p95 * 2, "errors": 0, "mean_batch": 2.0,
           "lru_hit_ratio": 0.9, "processes": processes,
           "concurrency": concurrency, "mix": mix}
    run.update(extra)
    return run


def _service_trajectory(tmp_path, runs):
    out = tmp_path / "traj.json"
    out.write_text(json.dumps({"runs": runs}))
    return out


class TestCompareLastServiceRuns:
    def test_diffs_matching_topology_only(self, tmp_path):
        # the nearest earlier record has a different process count; the
        # diff must reach past it to the matching 2-process baseline
        out = _service_trajectory(tmp_path, [
            _service_run("old-2p", rps=1000.0),
            _service_run("1p", rps=400.0, processes=1),
            _service_run("new-2p", rps=1100.0),
        ])
        table, regressions = compare_last_service_runs(out)
        assert regressions == []
        assert "processes=2" in table
        assert "old-2p" in table and "new-2p" in table and "1p" not in table
        assert "+10.0%" in table

    def test_throughput_drop_past_tolerance_gates(self, tmp_path):
        out = _service_trajectory(tmp_path, [
            _service_run("before", rps=1000.0),
            _service_run("after", rps=500.0),
        ])
        table, regressions = compare_last_service_runs(out, tolerance=0.25)
        (msg,) = regressions
        assert "throughput" in msg and "-50%" in msg
        assert "⚠" in table

    def test_p95_increase_gates_with_noise_floor(self, tmp_path):
        # 3x worse p95 but only 0.4 ms absolute: under the 1 ms floor
        out = _service_trajectory(tmp_path, [
            _service_run("before", rps=1000.0, p95=0.2),
            _service_run("after", rps=1000.0, p95=0.6),
        ])
        _, regressions = compare_last_service_runs(out)
        assert regressions == []
        out = _service_trajectory(tmp_path, [
            _service_run("before", rps=1000.0, p95=10.0),
            _service_run("after", rps=1000.0, p95=25.0),
        ])
        _, regressions = compare_last_service_runs(out)
        assert len(regressions) == 1 and "p95" in regressions[0]

    def test_unstamped_records_count_as_single_process(self, tmp_path):
        # pre-topology-stamping baselines diff against processes=1 runs
        old = _service_run("legacy", rps=900.0, processes=1)
        del old["processes"]
        out = _service_trajectory(tmp_path, [
            old, _service_run("new-1p", rps=950.0, processes=1)])
        table, regressions = compare_last_service_runs(out)
        assert regressions == []
        assert "legacy" in table and "processes=1" in table

    def test_no_matching_baseline_raises(self, tmp_path):
        out = _service_trajectory(tmp_path, [
            _service_run("1p", rps=400.0, processes=1),
            _service_run("2p", rps=1000.0, processes=2),
        ])
        with pytest.raises(ExperimentError, match="matching the latest"):
            compare_last_service_runs(out)

    def test_ignores_experiment_records(self, tmp_path):
        out = tmp_path / "traj.json"
        out.write_text(json.dumps({"runs": [
            {"label": "bench", "experiments": {"fig1": 1.0}},
        ]}))
        with pytest.raises(ExperimentError, match="no service records"):
            compare_last_service_runs(out)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no trajectory"):
            compare_last_service_runs(tmp_path / "nope.json")


class TestServiceCompareCli:
    def test_exit_zero_and_table(self, tmp_path, capsys):
        out = _service_trajectory(tmp_path, [
            _service_run("before", rps=1000.0),
            _service_run("after", rps=1200.0),
        ])
        code = main(["bench", "--compare", "--service", "--out", str(out)])
        assert code == 0
        assert "throughput (req/s)" in capsys.readouterr().out

    def test_exit_three_on_regression(self, tmp_path, capsys):
        out = _service_trajectory(tmp_path, [
            _service_run("before", rps=1000.0),
            _service_run("after", rps=100.0),
        ])
        code = main(["bench", "--compare", "--service", "--out", str(out)])
        assert code == 3
        assert "regression" in capsys.readouterr().err

    def test_service_without_compare_exits_two(self, tmp_path, capsys):
        code = main(["bench", "--service",
                     "--out", str(tmp_path / "t.json")])
        assert code == 2
        assert "--service" in capsys.readouterr().err
