"""Tests for the content-addressed result cache."""

import json

import numpy as np
import pytest

from repro.core.errors import ExperimentError
from repro.runner import ResultCache, default_cache_root
from repro.validation.series import ExperimentResult, Series

KEY = "ab" * 32
KEY2 = "cd" * 32


def _result() -> ExperimentResult:
    res = ExperimentResult(experiment="figX", title="t", x_label="x",
                           y_label="y")
    # awkward floats: round-tripping these exactly is the whole point
    res.series.append(Series("s", [1.0, 2.0, 3.0],
                             [0.1, 1 / 3, np.pi * 1e6]))
    res.check("c", True, "detail")
    res.notes.append("n")
    return res


class TestDefaultRoot:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert default_cache_root() == tmp_path / "x"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_root().name == "repro"


class TestRoundTrip:
    def test_put_get_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        res = _result()
        cache.put(KEY, res, meta={"experiment": "figX"})
        got = cache.get(KEY)
        assert got is not None
        assert got.identical(res)
        # bitwise, not approximately
        assert got.series[0].ys.tobytes() == res.series[0].ys.tobytes()

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, _result())
        path.write_text("{ truncated")
        assert cache.get(KEY) is None

    def test_unknown_format_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, _result())
        doc = json.loads(path.read_text())
        doc["format"] = 999
        path.write_text(json.dumps(doc))
        assert cache.get(KEY) is None

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ExperimentError, match="malformed"):
            cache.get("../../../etc/passwd")


class TestStatsAndListing:
    def test_stats_track_outcomes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, _result())
        cache.get(KEY, "figX")
        cache.get(KEY2, "figY")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.outcomes == {"figX": "hit", "figY": "miss"}
        assert "1 hit(s), 1 miss(es)" == cache.stats.summary()

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, _result(), meta={"experiment": "figX", "seed": 0})
        cache.put(KEY2, _result(), meta={"experiment": "figY", "seed": 1})
        entries = cache.entries()
        assert [e["experiment"] for e in entries] == ["figX", "figY"]
        assert all(e["bytes"] > 0 for e in entries)
        assert cache.clear() == 2
        assert cache.entries() == []
        assert cache.clear() == 0
