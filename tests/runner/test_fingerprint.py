"""Tests for code fingerprinting and cache-key derivation."""

from repro.runner import clear_fingerprint_memo, experiment_key, source_fingerprint


class TestSourceFingerprint:
    def test_stable_within_process(self):
        assert source_fingerprint() == source_fingerprint()

    def test_covers_package_sources(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fp1 = source_fingerprint(tmp_path)
        clear_fingerprint_memo()
        (tmp_path / "a.py").write_text("x = 2\n")
        assert source_fingerprint(tmp_path) != fp1

    def test_new_file_changes_fingerprint(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fp1 = source_fingerprint(tmp_path)
        clear_fingerprint_memo()
        (tmp_path / "b.py").write_text("")
        assert source_fingerprint(tmp_path) != fp1

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fp1 = source_fingerprint(tmp_path)
        clear_fingerprint_memo()
        (tmp_path / "notes.txt").write_text("irrelevant")
        assert source_fingerprint(tmp_path) == fp1

    def test_memoised_until_cleared(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fp1 = source_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 3\n")
        # stale memo served until explicitly cleared
        assert source_fingerprint(tmp_path) == fp1
        clear_fingerprint_memo()
        assert source_fingerprint(tmp_path) != fp1


class TestExperimentKey:
    def test_key_is_hex_sha256(self):
        key = experiment_key("fig1", scale=1.0, seed=0, fingerprint="abc")
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_key_varies_with_every_input(self):
        base = dict(scale=1.0, seed=0, fingerprint="abc", inputs={"rev": 1})
        key = experiment_key("fig1", **base)
        assert experiment_key("fig2", **base) != key
        assert experiment_key("fig1", **{**base, "scale": 0.5}) != key
        assert experiment_key("fig1", **{**base, "seed": 1}) != key
        assert experiment_key("fig1", **{**base, "fingerprint": "def"}) != key
        assert experiment_key(
            "fig1", **{**base, "inputs": {"rev": 2}}) != key

    def test_key_deterministic(self):
        a = experiment_key("fig1", scale=0.3, seed=7, fingerprint="f",
                           inputs={"machines": ["gcel"]})
        b = experiment_key("fig1", scale=0.3, seed=7, fingerprint="f",
                           inputs={"machines": ["gcel"]})
        assert a == b
