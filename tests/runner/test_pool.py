"""Tests for the parallel experiment executor (and the acceptance criteria:
parallel == serial bit-identically, and a warm cache serves a repeat batch
at least 5x faster than the cold run)."""

import time

import pytest

from repro.core.errors import ExperimentError
from repro.runner import ResultCache, resolve_ids, run_experiments
from repro.runner.pool import shutdown_pool, warm_pool

#: a cheap but non-trivial batch (two machines, calibration, microbenches)
BATCH = ["fig1", "fig2", "fig14", "table1"]


class TestResolveIds:
    def test_all_expands_to_registry(self):
        ids = resolve_ids(["all"])
        assert "fig1" in ids and "table1" in ids and "ext-lu" in ids
        assert "ext-radix" in ids and "ext-modern" in ids
        assert len(ids) == 35

    def test_duplicates_dropped_order_kept(self):
        assert resolve_ids(["fig2", "fig1", "fig2"]) == ["fig2", "fig1"]

    def test_unknown_id_lists_valid_ones(self):
        with pytest.raises(ExperimentError, match="valid ids:.*fig14"):
            resolve_ids(["fig1", "nope"])

    def test_jobs_validated(self):
        with pytest.raises(ExperimentError, match="jobs"):
            run_experiments(["fig14"], jobs=0)


class TestSerialExecution:
    def test_uncached_run_without_cache(self):
        (out,) = run_experiments(["fig14"], scale=0.3, cache=None)
        assert out.id == "fig14"
        assert not out.cached
        assert out.result.passed

    def test_cache_round_trip_equals_fresh(self, tmp_path):
        """Cache-hit result == cache-miss result, bit for bit."""
        cache = ResultCache(tmp_path)
        (miss,) = run_experiments(["fig14"], scale=0.3, cache=cache)
        (hit,) = run_experiments(["fig14"], scale=0.3, cache=cache)
        assert not miss.cached and hit.cached
        assert hit.result.identical(miss.result)
        for a, b in zip(hit.result.series, miss.result.series):
            assert a.ys.tobytes() == b.ys.tobytes()

    def test_key_inputs_partition_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiments(["fig14"], scale=0.3, seed=0, cache=cache)
        (other_seed,) = run_experiments(["fig14"], scale=0.3, seed=1,
                                        cache=cache)
        (other_scale,) = run_experiments(["fig14"], scale=0.4, seed=0,
                                         cache=cache)
        assert not other_seed.cached and not other_scale.cached

    def test_force_recomputes_and_restores(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiments(["fig14"], scale=0.3, cache=cache)
        (out,) = run_experiments(["fig14"], scale=0.3, cache=cache,
                                 force=True)
        assert not out.cached
        assert cache.stats.stores == 2


class TestParallelExecution:
    def test_jobs4_bit_identical_to_jobs1(self):
        par = run_experiments(BATCH, scale=0.3, jobs=4, cache=None)
        ser = run_experiments(BATCH, scale=0.3, jobs=1, cache=None)
        assert [o.id for o in par] == BATCH
        for a, b in zip(par, ser):
            assert a.result.identical(b.result), a.id

    def test_parallel_results_land_in_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiments(BATCH, scale=0.3, jobs=4, cache=cache)
        assert cache.stats.misses == len(BATCH)
        warm = ResultCache(tmp_path)
        outs = run_experiments(BATCH, scale=0.3, jobs=4, cache=warm)
        assert all(o.cached for o in outs)
        assert warm.stats.hits == len(BATCH)


class TestWarmPool:
    def test_pool_persists_across_batches(self):
        ex1 = warm_pool(2, seed=0)
        ex2 = warm_pool(2, seed=0)
        assert ex1 is ex2
        try:
            # the same executor serves successive run_experiments batches
            run_experiments(["fig14"], scale=0.3, jobs=2, cache=None)
            run_experiments(["fig14"], scale=0.3, jobs=2, cache=None)
            assert warm_pool(2, seed=0) is ex1
        finally:
            shutdown_pool()

    def test_jobs_change_rebuilds(self):
        ex2 = warm_pool(2, seed=0)
        ex3 = warm_pool(3, seed=0)
        assert ex2 is not ex3
        shutdown_pool()

    def test_shutdown_is_idempotent(self):
        warm_pool(2, seed=0)
        shutdown_pool()
        shutdown_pool()  # no pool running: must be a no-op

    def test_parent_memo_is_prewarmed(self):
        from repro.calibration.table1 import calibration_for

        warm_pool(2, seed=0)
        try:
            # warm_pool pre-fits in the parent before forking, so the
            # standard configs hit the memo instantly
            t0 = time.perf_counter()
            calibration_for("gcel", P=64, machine_seed=1000, seed=0)
            assert time.perf_counter() - t0 < 0.1
        finally:
            shutdown_pool()


def _boom(exp_id, scale, seed):
    """Stand-in worker raising a deterministic (non-retryable) error."""
    raise RuntimeError(f"injected pool failure for {exp_id}")


class TestPoolErrorCleanup:
    def test_worker_error_propagates_and_pool_is_reaped(self, monkeypatch):
        """Regression: an exception escaping the parallel collection loop
        used to leak the warm pool (workers alive, futures pending).  The
        error must still propagate, but the pool must be shut down."""
        from repro.runner import pool as pool_mod

        monkeypatch.setattr(pool_mod, "_worker", _boom)
        with pytest.raises(RuntimeError, match="injected pool failure"):
            run_experiments(BATCH, scale=0.3, jobs=2, cache=None)
        assert pool_mod._pool is None  # reaped, not leaked

    def test_pool_usable_again_after_cleanup(self, monkeypatch):
        from repro.runner import pool as pool_mod

        monkeypatch.setattr(pool_mod, "_worker", _boom)
        with pytest.raises(RuntimeError):
            run_experiments(BATCH, scale=0.3, jobs=2, cache=None)
        monkeypatch.undo()
        try:
            outs = run_experiments(["fig1", "fig14"], scale=0.3, jobs=2,
                                   cache=None)
            assert [o.id for o in outs] == ["fig1", "fig14"]
        finally:
            shutdown_pool()


class TestCacheSpeedup:
    def test_warm_batch_at_least_5x_faster(self, tmp_path):
        """Acceptance: a second invocation is served >=5x faster, and the
        cache-stats output proves it came from the cache."""
        cache = ResultCache(tmp_path)
        t0 = time.perf_counter()
        cold = run_experiments(BATCH, scale=0.3, cache=cache)
        cold_s = time.perf_counter() - t0
        assert cache.stats.summary() == "0 hit(s), 4 miss(es)"

        warm_cache = ResultCache(tmp_path)
        t0 = time.perf_counter()
        warm = run_experiments(BATCH, scale=0.3, cache=warm_cache)
        warm_s = time.perf_counter() - t0
        assert warm_cache.stats.summary() == "4 hit(s), 0 miss(es)"
        assert all(o.cached for o in warm)
        for a, b in zip(cold, warm):
            assert a.result.identical(b.result), a.id
        assert cold_s >= 5 * warm_s, (
            f"cold {cold_s:.3f}s vs warm {warm_s:.3f}s")


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError, match="unknown engine"):
            run_experiments(["fig14"], scale=0.3, cache=None, engine="turbo")

    @pytest.mark.parametrize("engine", ["generator", "ir"])
    def test_explicit_engine_matches_default(self, engine):
        (a,) = run_experiments(["fig14"], scale=0.3, cache=None)
        (b,) = run_experiments(["fig14"], scale=0.3, cache=None,
                               engine=engine)
        assert a.result.to_dict() == b.result.to_dict()

    def test_engine_scope_is_restored(self, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        run_experiments(["fig14"], scale=0.3, cache=None, engine="generator")
        assert "REPRO_ENGINE" not in os.environ
