"""Tests for the simulated vendor library routines (Section 7)."""

import pytest

from repro.core.errors import ModelError
from repro.library import cmssl, maspar_matmul


class TestMasParIntrinsic:
    def test_published_point(self):
        # paper §7: 61.7 Mflops at N = 700
        assert maspar_matmul.mflops(700) == pytest.approx(61.7, rel=0.03)

    def test_below_peak(self):
        for N in (64, 128, 256, 512, 700, 1024):
            assert maspar_matmul.mflops(N) < maspar_matmul.PEAK_MFLOPS

    def test_monotone_in_N(self):
        rates = [maspar_matmul.mflops(N) for N in (64, 128, 256, 512, 700)]
        assert rates == sorted(rates)

    def test_time_consistent(self):
        N = 512
        assert maspar_matmul.time_us(N) == pytest.approx(
            2 * N ** 3 / maspar_matmul.mflops(N))

    def test_bad_N(self):
        with pytest.raises(ModelError):
            maspar_matmul.mflops(0)


class TestCMSSL:
    def test_never_exceeds_151(self):
        # paper §7: "gen_matrix_mult never achieves more than 151 Mflops"
        for N in (32, 64, 128, 256, 512, 1024, 4096):
            assert cmssl.mflops(N) <= 151.0

    def test_reaches_about_150_at_512(self):
        assert cmssl.mflops(512) == pytest.approx(150, abs=5)

    def test_far_below_scalar_peak(self):
        assert cmssl.mflops(512) < 0.3 * cmssl.SCALAR_PEAK_MFLOPS

    def test_vector_units_build(self):
        # paper §7: 1016 Mflops at N = 512 with the vector units
        assert cmssl.mflops_vector_units(512) == pytest.approx(1016, rel=0.03)
        assert cmssl.mflops_vector_units(512) > 6 * cmssl.mflops(512)

    def test_time_positive(self):
        assert cmssl.time_us(256) > 0

    def test_bad_N(self):
        with pytest.raises(ModelError):
            cmssl.mflops(-1)
        with pytest.raises(ModelError):
            cmssl.mflops_vector_units(0)
